"""Cross-process trace correlation: deterministic span contexts.

A job's execution spans three kinds of processes — the submitting client,
the scheduler's dispatch thread, and the forked workers — and each records
its own :class:`~repro.obs.tracing.TraceEvent` entries.  This module makes
those events *stitchable*: a :class:`TraceContext` (``trace_id`` /
``span_id`` / ``parent_id``) travels with each chunk task and comes back
inside the chunk's :class:`~repro.stochastic.results.StochasticResult`, so
the scheduler (or anyone holding the merged result) can rebuild one
per-job span tree and export it as Chrome ``trace_event`` JSON
(``chrome://tracing`` / Perfetto).

Determinism is a design requirement, not an accident: span ids are SHA-256
digests of ``trace_id / span name / disambiguators`` rather than random
ids, so two executions of the same job produce *identical* tree shapes —
which is what lets the fault-injection suite assert that a worker crash
and its retry leave the same stitched structure on every rerun.  Retries
stay distinguishable because the dispatch attempt number is one of the
disambiguators.

Timestamps are ``time.monotonic()`` instants.  On Linux the monotonic
clock is system-wide, so spans recorded in forked workers align with the
scheduler's own spans on a single timeline — the same property the shared
job deadline already relies on.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

__all__ = [
    "TraceContext",
    "derive_span_id",
    "job_trace_context",
    "stitch_trace",
    "to_chrome_trace",
]

#: Hex digits kept from the SHA-256 digest for ids (64 bits — collision
#: risk is negligible at per-job span counts, and short ids keep the
#: serialised results small).
_ID_HEX_CHARS = 16


def derive_span_id(trace_id: str, name: str, *disambiguators: object) -> str:
    """Deterministic span id for ``name`` within a trace.

    Identical inputs always produce the identical id — the property the
    cross-rerun stitching tests pin down.  Pass enough ``disambiguators``
    (chunk index, dispatch attempt, ...) to keep sibling spans distinct.
    """
    material = "/".join([trace_id, name, *(str(part) for part in disambiguators)])
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:_ID_HEX_CHARS]


@dataclass(frozen=True)
class TraceContext:
    """Picklable span context propagated across process boundaries."""

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None

    def child(self, name: str, *disambiguators: object) -> "TraceContext":
        """Context for a child span of this one (deterministic id)."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=derive_span_id(self.trace_id, name, self.span_id, *disambiguators),
            parent_id=self.span_id,
        )

    def to_dict(self) -> Dict[str, Optional[str]]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
        }


def job_trace_context(job_key: str) -> TraceContext:
    """Root context of one job's trace: the trace id *is* the job key prefix.

    Content-addressed job keys make the trace id content-addressed too —
    resubmitting the same spec correlates with the same trace, which is
    exactly the semantics the result cache already gives the job itself.
    """
    trace_id = job_key[:_ID_HEX_CHARS]
    return TraceContext(
        trace_id=trace_id, span_id=derive_span_id(trace_id, "job"), parent_id=None
    )


def stitch_trace(events: Iterable[Dict[str, object]]) -> Dict[str, object]:
    """Assemble correlated trace events into per-trace span trees.

    ``events`` are exported :class:`~repro.obs.tracing.TraceEvent`
    dictionaries; entries without a ``span_id`` are ignored (they are
    uncorrelated scheduler housekeeping, not part of any tree).  Returns::

        {"roots": [<span>, ...],       # nodes with no parent, by start time
         "orphans": [<span>, ...],     # parent_id set but parent not found
         "spans": <total span count>}

    where each span node is the original event dict plus a ``children``
    list (sorted by start time).  An empty ``orphans`` list is the
    propagation invariant the service tests assert: every worker-side span
    must reach back to the job root.
    """
    spans: List[Dict[str, object]] = []
    by_id: Dict[str, Dict[str, object]] = {}
    for event in events:
        span_id = event.get("span_id")
        if not span_id:
            continue
        node = dict(event)
        node["children"] = []
        spans.append(node)
        # Duplicate span ids (a chunk span arriving via both the result and
        # a checkpoint) keep the first occurrence as the canonical node.
        by_id.setdefault(str(span_id), node)
    roots: List[Dict[str, object]] = []
    orphans: List[Dict[str, object]] = []
    for node in spans:
        if by_id.get(str(node["span_id"])) is not node:
            continue  # duplicate — already represented
        parent_id = node.get("parent_id")
        if parent_id is None:
            roots.append(node)
        else:
            parent = by_id.get(str(parent_id))
            if parent is None:
                orphans.append(node)
            else:
                parent["children"].append(node)
    by_start = lambda n: (n.get("start", 0.0), n.get("name", ""))  # noqa: E731
    for node in spans:
        node["children"].sort(key=by_start)
    roots.sort(key=by_start)
    orphans.sort(key=by_start)
    return {"roots": roots, "orphans": orphans, "spans": len(by_id)}


def to_chrome_trace(events: Iterable[Dict[str, object]]) -> Dict[str, object]:
    """Convert exported trace events to Chrome ``trace_event`` JSON.

    Every event becomes a complete ("X"-phase) slice with microsecond
    ``ts``/``dur``; instantaneous events become "i" instants.  The worker
    (or pid) attribute selects the row (``tid``), so chunk spans from
    different workers render as parallel tracks under one process.  Load
    the result in ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    trace_events: List[Dict[str, object]] = []
    for event in events:
        attrs = dict(event.get("attrs", {}))
        tid = attrs.get("worker", attrs.get("pid", 0))
        try:
            tid = int(tid)
        except (TypeError, ValueError):
            tid = 0
        args = attrs
        for field in ("trace_id", "span_id", "parent_id"):
            if event.get(field) is not None:
                args[field] = event[field]
        duration_us = float(event.get("duration", 0.0)) * 1e6
        entry: Dict[str, object] = {
            "name": str(event.get("name", "?")),
            "ph": "X" if duration_us > 0.0 else "i",
            "ts": float(event.get("start", 0.0)) * 1e6,
            "pid": 1,
            "tid": tid,
            "args": args,
        }
        if entry["ph"] == "X":
            entry["dur"] = duration_us
        else:
            entry["s"] = "t"  # instant scope: thread
        trace_events.append(entry)
    trace_events.sort(key=lambda e: (e["ts"], e["name"]))
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, events: Iterable[Dict[str, object]]) -> None:
    """Serialise :func:`to_chrome_trace` output to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome_trace(events), handle, indent=2, sort_keys=True)
        handle.write("\n")
