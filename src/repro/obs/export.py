"""Live telemetry export: OpenMetrics text exposition and JSONL events.

PR 2 made every layer record into :class:`~repro.obs.metrics.MetricsRegistry`
snapshots; this module gets those numbers *out* of a long-lived
``repro serve`` process while jobs are still running:

* :func:`to_openmetrics` renders a snapshot as OpenMetrics/Prometheus
  text exposition — the same formatter backs the serve endpoint and
  ``repro stats --format=openmetrics``, so one-shot runs and the live
  endpoint emit byte-compatible text.
* :class:`MetricsExporter` serves that text over HTTP (``GET /metrics``)
  from a daemon thread, pulling a fresh snapshot per scrape via a
  caller-supplied collect callback.
* :class:`EventLogWriter` appends machine-readable JSONL telemetry events
  (heartbeats, job transitions) for tail-based pipelines.

Metric naming: dotted registry names map to ``repro_``-prefixed
underscore names (``dd.unique.hits`` → ``repro_dd_unique_hits``), counters
gain the ``_total`` suffix, histograms expand into cumulative ``le``
buckets plus ``_sum``/``_count``.  Each ``# HELP`` line carries
``source=<dotted.name>`` so the original registry name remains greppable
in the exposition — operators (and the CI smoke test) can search for
``service.queue.depth`` without knowing the mangling rules.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, IO, Iterable, List, Optional, Tuple

from .metrics import MetricsRegistry

__all__ = [
    "CONTENT_TYPE",
    "to_openmetrics",
    "escape_label_value",
    "MetricsExporter",
    "EventLogWriter",
    "read_event_log",
]

#: OpenMetrics exposition content type (Prometheus scrapes accept it too).
CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"


def escape_label_value(value: str) -> str:
    """Escape a label value per the OpenMetrics ABNF (backslash, quote, LF)."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _metric_name(name: str) -> str:
    """Map a dotted registry name onto an exposition-legal metric name."""
    cleaned = "".join(
        ch if (ch.isascii() and (ch.isalnum() or ch == "_")) else "_" for ch in name
    )
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return "repro_" + cleaned


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _format_labels(labels: Optional[Dict[str, str]]) -> str:
    if not labels:
        return ""
    parts = [
        f'{key}="{escape_label_value(str(value))}"'
        for key, value in sorted(labels.items())
    ]
    return "{" + ",".join(parts) + "}"


def to_openmetrics(
    snapshot: Optional[Dict[str, object]],
    labeled_gauges: Iterable[Tuple[str, Dict[str, str], float]] = (),
) -> str:
    """Render a metrics snapshot as OpenMetrics text exposition.

    ``labeled_gauges`` adds gauge samples with explicit label sets — the
    serve endpoint uses it for live per-property estimate streams, e.g.
    ``("job.estimate.halfwidth", {"property": "fidelity", "job": key}, 0.02)``.
    Multiple entries may share a metric name (one sample per label set).
    The output always terminates with the mandatory ``# EOF`` line.
    """
    lines: List[str] = []
    snapshot = snapshot or {}

    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"# HELP {metric} source={name}")
        lines.append(f"{metric}_total {_format_value(float(value))}")

    for name, value in sorted(snapshot.get("gauges", {}).items()):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"# HELP {metric} source={name}")
        lines.append(f"{metric} {_format_value(float(value))}")

    grouped: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    order: List[Tuple[str, str]] = []
    for name, labels, value in labeled_gauges:
        if name not in grouped:
            grouped[name] = []
            order.append((name, _metric_name(name)))
        grouped[name].append((dict(labels), float(value)))
    for name, metric in sorted(order, key=lambda item: item[1]):
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"# HELP {metric} source={name}")
        for labels, value in grouped[name]:
            lines.append(f"{metric}{_format_labels(labels)} {_format_value(value)}")

    for name, data in sorted(snapshot.get("histograms", {}).items()):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} histogram")
        lines.append(f"# HELP {metric} source={name}")
        cumulative = 0
        for bound, bucket in zip(data["bounds"], data["counts"]):
            cumulative += int(bucket)
            lines.append(
                f'{metric}_bucket{{le="{_format_value(float(bound))}"}} {cumulative}'
            )
        total_count = int(data["count"])
        lines.append(f'{metric}_bucket{{le="+Inf"}} {total_count}')
        lines.append(f"{metric}_sum {_format_value(float(data['sum']))}")
        lines.append(f"{metric}_count {total_count}")

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


class MetricsExporter:
    """HTTP endpoint serving OpenMetrics text from a collect callback.

    ``collect`` runs on the scrape thread and must return the exposition
    body (use :func:`to_openmetrics`); exceptions become HTTP 500 rather
    than killing the server.  Port 0 binds an ephemeral port — read the
    bound one from :attr:`port`.  The server runs on a daemon thread so a
    crashing serve loop never hangs on it.
    """

    def __init__(
        self,
        collect: Callable[[], str],
        port: int = 0,
        host: str = "127.0.0.1",
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self._collect = collect
        self._registry = registry
        exporter = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                if self.path.split("?", 1)[0] not in ("/metrics", "/"):
                    self.send_error(404, "only /metrics is served")
                    return
                try:
                    body = exporter._collect().encode("utf-8")
                except Exception as exc:  # pragma: no cover - defensive
                    self.send_error(500, f"collect failed: {exc}")
                    return
                if exporter._registry is not None:
                    exporter._registry.counter("export.scrapes").inc()
                self.send_response(200)
                self.send_header("Content-Type", CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, fmt: str, *args: object) -> None:
                pass  # scrapes are telemetry, not access-log material

        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-exporter",
            daemon=True,
        )
        self._thread.start()

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ephemeral port 0)."""
        return int(self._server.server_address[1])

    @property
    def url(self) -> str:
        host = self._server.server_address[0]
        return f"http://{host}:{self.port}/metrics"

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsExporter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class EventLogWriter:
    """Append-only JSONL telemetry event stream (one JSON object per line).

    Thread-safe, flushed *and fsync'd* per event (default) so the log
    survives a hard process death with at worst one torn trailing line —
    which :func:`read_event_log` skips on the way back in.  For very
    high event rates, ``fsync_interval`` batches the fsync (the flush
    still happens per event, so ``tail -f`` pipelines stay live; only
    crash durability is amortised).  Events are plain dictionaries; the
    writer stamps nothing, so callers control the schema (serve adds
    ``event`` and ``ts`` keys).
    """

    def __init__(
        self,
        path: str,
        registry: Optional[MetricsRegistry] = None,
        fsync_interval: float = 0.0,
    ) -> None:
        self.path = path
        self.fsync_interval = fsync_interval
        self._registry = registry
        self._lock = threading.Lock()
        self._last_fsync = 0.0
        self._handle: Optional[IO[str]] = open(path, "a", encoding="utf-8")

    def write(self, event: Dict[str, object]) -> None:
        line = json.dumps(event, sort_keys=True, default=str)
        with self._lock:
            if self._handle is None:
                return
            self._handle.write(line + "\n")
            self._handle.flush()
            now = time.monotonic()
            if self.fsync_interval <= 0.0 or (
                now - self._last_fsync >= self.fsync_interval
            ):
                try:
                    os.fsync(self._handle.fileno())
                    self._last_fsync = now
                except OSError:
                    pass  # durability is best-effort; the stream stays live
        if self._registry is not None:
            self._registry.counter("export.events.written").inc()

    def flush(self) -> None:
        """Force buffered events to disk (drain path)."""
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
                try:
                    os.fsync(self._handle.fileno())
                except OSError:
                    pass

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
                try:
                    os.fsync(self._handle.fileno())
                except (OSError, ValueError):
                    pass
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "EventLogWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_event_log(path: str) -> List[Dict[str, object]]:
    """Parse a JSONL event log, tolerating a crash-torn trailing line.

    A process killed mid-append leaves at most one incomplete final line;
    that line (and any non-object line) is skipped rather than raised, so
    post-crash logs are always readable.  A missing file reads as empty.
    """
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError:
        return []
    events: List[Dict[str, object]] = []
    lines = raw.split(b"\n")
    trailing_complete = raw.endswith(b"\n")
    if trailing_complete:
        lines = lines[:-1]
    for position, line in enumerate(lines):
        if not line.strip():
            continue
        if position == len(lines) - 1 and not trailing_complete:
            continue  # torn trailing record — the crash signature
        try:
            record = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            continue
        if isinstance(record, dict):
            events.append(record)
    return events
