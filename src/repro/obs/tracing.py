"""Span-style trace events over a bounded in-memory buffer.

Where metrics answer "how much / how often", traces answer "what happened,
when, in what order".  A :class:`Tracer` records :class:`TraceEvent`
entries — either instantaneous events or timed spans — into a bounded
ring buffer, so long-lived processes (the job scheduler, a serve loop)
can keep tracing without unbounded growth.

Example::

    tracer = Tracer()
    with tracer.span("chunk.execute", chunk=3, worker=1):
        run_chunk()
    tracer.event("job.finalize", job=key[:16])
    for entry in tracer.export():
        print(entry["name"], entry["duration"], entry["attrs"])

The exported form is a list of plain dictionaries (JSON-able), ordered by
start time, with ``start`` measured on the monotonic clock.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Optional

__all__ = ["TraceEvent", "Tracer", "NULL_TRACER"]


@dataclass
class TraceEvent:
    """One recorded span or instantaneous event.

    ``trace_id``/``span_id``/``parent_id`` are optional correlation fields
    (see :mod:`repro.obs.context`): events carrying them stitch into one
    per-job tree even when recorded in different processes.  They are
    omitted from :meth:`to_dict` when unset, so uncorrelated events keep
    their historical exported shape.
    """

    name: str
    start: float  #: monotonic-clock start time (seconds)
    duration: float = 0.0  #: zero for instantaneous events
    attrs: Dict[str, object] = field(default_factory=dict)
    trace_id: Optional[str] = None
    span_id: Optional[str] = None
    parent_id: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attrs": dict(self.attrs),
        }
        if self.span_id is not None:
            data["trace_id"] = self.trace_id
            data["span_id"] = self.span_id
            data["parent_id"] = self.parent_id
        return data


class Tracer:
    """Bounded recorder of trace events (oldest entries evicted first)."""

    def __init__(self, max_events: int = 4096) -> None:
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self._events: Deque[TraceEvent] = deque(maxlen=max_events)
        self.dropped = 0

    def event(self, name: str, **attrs: object) -> TraceEvent:
        """Record an instantaneous event."""
        entry = TraceEvent(name=name, start=time.monotonic(), attrs=attrs)
        self._append(entry)
        return entry

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[TraceEvent]:
        """Record a timed span around a block (duration stamped on exit)."""
        entry = TraceEvent(name=name, start=time.monotonic(), attrs=attrs)
        try:
            yield entry
        finally:
            entry.duration = time.monotonic() - entry.start
            self._append(entry)

    def _append(self, entry: TraceEvent) -> None:
        if len(self._events) == self._events.maxlen:
            self.dropped += 1
        self._events.append(entry)

    def export(self) -> List[Dict[str, object]]:
        """All buffered events as JSON-able dictionaries (start order)."""
        return [event.to_dict() for event in sorted(self._events, key=lambda e: e.start)]

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)


class _NullTracer(Tracer):
    """A tracer that records nothing (zero-overhead default)."""

    def __init__(self) -> None:
        super().__init__(max_events=1)

    def event(self, name: str, **attrs: object) -> TraceEvent:
        return TraceEvent(name=name, start=0.0, attrs=attrs)

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[TraceEvent]:
        yield TraceEvent(name=name, start=0.0, attrs=attrs)


#: Shared no-op tracer for call sites that accept an optional tracer.
NULL_TRACER = _NullTracer()
