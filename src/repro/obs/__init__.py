"""repro.obs — dependency-free observability: metrics, tracing, export.

The cross-cutting layer every subsystem reports into:

* ``repro.dd`` — unique/compute/complex-table hit rates, garbage-collection
  sweeps and reclaimed nodes, per-multiply node growth;
* ``repro.stochastic`` — per-trajectory latency, property-evaluation time,
  errors-fired counts;
* ``repro.service`` — chunk queue depth, retries, worker respawns, store
  hits/misses, checkpoint writes.

Snapshots are plain dictionaries that travel inside
:class:`~repro.stochastic.results.StochasticResult` from worker processes
back to the scheduler, merge associatively (:func:`merge_snapshots`), and
surface through ``repro-sim stats`` and the table harness's ``--metrics``
sidecar.

On top of the recording primitives sit three exit ramps:

* :mod:`repro.obs.export` — OpenMetrics text exposition (served live by
  ``repro serve --metrics-port`` and emitted one-shot by
  ``repro stats --format=openmetrics``) plus a JSONL event stream;
* :mod:`repro.obs.context` — deterministic cross-process trace contexts
  that stitch scheduler and worker spans into one per-job tree,
  exportable as Chrome ``trace_event`` JSON;
* :mod:`repro.obs.profile` — the ``REPRO_PROFILE``-gated DD hot-loop
  profiler behind ``repro profile --flame``.

Persisting across processes and restarts sits :mod:`repro.obs.ledger` —
the crash-safe per-circuit-family run ledger (``repro.ledger/v1``) whose
aggregates feed the measured dispatch cost model in
:mod:`repro.exact.cost` and the ``repro history`` CLI surface.

See docs/OBSERVABILITY.md for the metric catalogue.
"""

from .context import (
    TraceContext,
    derive_span_id,
    job_trace_context,
    stitch_trace,
    to_chrome_trace,
    write_chrome_trace,
)
from .export import (
    CONTENT_TYPE,
    EventLogWriter,
    MetricsExporter,
    escape_label_value,
    read_event_log,
    to_openmetrics,
)
from .ledger import (
    FamilyAggregate,
    LEDGER_SCHEMA,
    LedgerState,
    RATE_BUCKETS,
    RunLedger,
    circuit_fingerprint,
    ledger_path,
    replay_ledger,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NODE_BUCKETS,
    TIME_BUCKETS,
    delta_snapshots,
    derive_rates,
    format_histogram,
    merge_snapshots,
)
from .profile import (
    HotLoopProfiler,
    PROFILE_ENV,
    attributed_seconds,
    folded_lines,
    merge_profiles,
    profiling_enabled,
)
from .tracing import NULL_TRACER, TraceEvent, Tracer

__all__ = [
    "CONTENT_TYPE",
    "Counter",
    "EventLogWriter",
    "FamilyAggregate",
    "Gauge",
    "Histogram",
    "HotLoopProfiler",
    "LEDGER_SCHEMA",
    "LedgerState",
    "MetricsExporter",
    "MetricsRegistry",
    "NODE_BUCKETS",
    "NULL_TRACER",
    "PROFILE_ENV",
    "RATE_BUCKETS",
    "RunLedger",
    "TIME_BUCKETS",
    "TraceContext",
    "TraceEvent",
    "Tracer",
    "attributed_seconds",
    "circuit_fingerprint",
    "delta_snapshots",
    "derive_rates",
    "derive_span_id",
    "escape_label_value",
    "folded_lines",
    "format_histogram",
    "job_trace_context",
    "ledger_path",
    "merge_profiles",
    "merge_snapshots",
    "profiling_enabled",
    "read_event_log",
    "replay_ledger",
    "stitch_trace",
    "to_chrome_trace",
    "to_openmetrics",
    "write_chrome_trace",
]
