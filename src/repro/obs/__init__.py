"""repro.obs — dependency-free observability: metrics and tracing.

The cross-cutting layer every subsystem reports into:

* ``repro.dd`` — unique/compute/complex-table hit rates, garbage-collection
  sweeps and reclaimed nodes, per-multiply node growth;
* ``repro.stochastic`` — per-trajectory latency, property-evaluation time,
  errors-fired counts;
* ``repro.service`` — chunk queue depth, retries, worker respawns, store
  hits/misses, checkpoint writes.

Snapshots are plain dictionaries that travel inside
:class:`~repro.stochastic.results.StochasticResult` from worker processes
back to the scheduler, merge associatively (:func:`merge_snapshots`), and
surface through ``repro-sim stats`` and the table harness's ``--metrics``
sidecar.  See docs/OBSERVABILITY.md for the metric catalogue.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NODE_BUCKETS,
    TIME_BUCKETS,
    delta_snapshots,
    derive_rates,
    format_histogram,
    merge_snapshots,
)
from .tracing import NULL_TRACER, TraceEvent, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NODE_BUCKETS",
    "NULL_TRACER",
    "TIME_BUCKETS",
    "TraceEvent",
    "Tracer",
    "delta_snapshots",
    "derive_rates",
    "format_histogram",
    "merge_snapshots",
]
