"""Instrumenting profiler for the decision-diagram hot loop.

``repro stats`` explains a finished run; this module explains *where the
time went inside it*: which gate of the circuit, and which DD primitive
under that gate (multiply / add / kron / normalise / GC), consumed the
wall clock — plus how the diagram's node count grew while it ran.  That
attribution is what makes regressions in the prefix/gateplan engine
visible as "gate 7's multiply got 4x slower" instead of "GHZ-15 is slower".

Design constraints, in priority order:

1. **Zero cost when off.**  Profiling is gated by the ``REPRO_PROFILE``
   environment variable (default ``off``).  Call sites hold the module
   attribute :data:`ACTIVE`; when it is ``None`` the per-gate and per-op
   hooks are a single ``is None`` test.  The env var is the only switch
   because it is the only channel that reaches forked workers without
   entering the content-addressed job key (same precedent as
   ``REPRO_NORM_GUARD`` / ``REPRO_PREFIX_SHARING``).
2. **Deterministic output shape.**  Aggregation is keyed by frame path —
   ``span;trajectory;g3:cx;dd.multiply`` — not by sampling, so two runs of
   the same circuit produce the same set of keys (timings vary, structure
   does not).
3. **No double counting.**  Every aggregated value is *self* (exclusive)
   time: a frame's total minus its children's totals, with DD ops counted
   as leaf frames.  Folded-stack lines therefore sum to the profiled wall
   time, which is the property the acceptance test pins (within 10% of the
   measured span wall).

DD ops are recorded non-reentrantly: :meth:`HotLoopProfiler.op_begin`
returns ``None`` while another op is active, so a ``multiply`` that calls
``add`` internally attributes the whole interval to ``multiply`` — the
recursive bodies themselves stay uninstrumented (see
:class:`~repro.dd.package.DDPackage`'s private ``_multiply``/``_add``).

Profiles ride in :class:`~repro.stochastic.results.StochasticResult`
(plain JSON dictionaries, additively mergeable across chunks and
processes) and render as ``frame;frame;op <microseconds>`` folded-stack
lines for `flamegraph.pl`/speedscope via :func:`folded_lines`.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Tuple

__all__ = [
    "PROFILE_ENV",
    "ACTIVE",
    "HotLoopProfiler",
    "profiling_enabled",
    "merge_profiles",
    "folded_lines",
    "attributed_seconds",
]

#: Environment switch: anything other than off/0/false/no/empty enables it.
PROFILE_ENV = "REPRO_PROFILE"

#: Profile payload schema version (bump on shape changes).
PROFILE_VERSION = 1

#: The currently installed profiler, or None (the common, fast case).
#: Hot paths read this module attribute directly; only
#: ``run_trajectory_span`` assigns it.
ACTIVE: Optional["HotLoopProfiler"] = None


def profiling_enabled() -> bool:
    """Whether ``REPRO_PROFILE`` asks for instrumentation (default: no)."""
    value = os.environ.get(PROFILE_ENV, "off").strip().lower()
    return value not in ("", "off", "0", "false", "no")


class HotLoopProfiler:
    """Frame-stack profiler with exclusive-time aggregation.

    Frames (:meth:`push`/:meth:`pop`) model the logical call structure —
    span, trajectory, per-gate step, pseudo-phases like ``<properties>`` —
    and DD ops (:meth:`op_begin`/:meth:`op_end`) are non-reentrant leaf
    timings under the current frame.  :meth:`record_nodes` attributes
    decision-diagram node growth to the current frame.
    """

    __slots__ = ("_started", "_stack", "_frames", "_nodes", "_last_nodes", "_op_active")

    def __init__(self) -> None:
        self._started = time.perf_counter()
        # Stack entries are [label, start, child_seconds] lists (mutable).
        self._stack: List[List[object]] = []
        # (frame, frame, ...) path -> [call_count, self_seconds]
        self._frames: Dict[Tuple[str, ...], List[float]] = {}
        # (frame, ...) path -> [growth, peak]
        self._nodes: Dict[Tuple[str, ...], List[int]] = {}
        self._last_nodes = 0
        self._op_active = False

    # -- frames ---------------------------------------------------------

    def push(self, label: str) -> None:
        """Enter a frame; every timing until :meth:`pop` lands under it."""
        self._stack.append([label, time.perf_counter(), 0.0])

    def pop(self) -> None:
        """Leave the current frame, crediting it with its exclusive time."""
        label, start, child_seconds = self._stack.pop()
        total = time.perf_counter() - start  # type: ignore[operator]
        path = tuple(entry[0] for entry in self._stack) + (label,)  # type: ignore[misc]
        self._credit(self._frames, path, max(0.0, total - child_seconds))  # type: ignore[arg-type]
        if self._stack:
            self._stack[-1][2] += total  # type: ignore[operator]

    # -- DD operations --------------------------------------------------

    def op_begin(self, op: str) -> Optional[float]:
        """Start timing a DD op; returns ``None`` when one is already active.

        The non-reentrancy keeps the recursive DD kernels uninstrumented:
        a top-level ``multiply`` owns its whole interval even though it
        calls ``add`` internally, and the caller's matching
        :meth:`op_end` with a ``None`` token is a no-op.
        """
        if self._op_active:
            return None
        self._op_active = True
        return time.perf_counter()

    def op_end(self, token: Optional[float], op: str) -> None:
        if token is None:
            return
        self._op_active = False
        elapsed = time.perf_counter() - token
        path = tuple(entry[0] for entry in self._stack) + ("dd." + op,)  # type: ignore[misc]
        self._credit(self._frames, path, elapsed)
        if self._stack:
            self._stack[-1][2] += elapsed  # type: ignore[operator]

    # -- node growth ----------------------------------------------------

    def record_nodes(self, nodes: int) -> None:
        """Attribute the state's node count after a gate to the current frame."""
        delta = nodes - self._last_nodes
        self._last_nodes = nodes
        path = tuple(entry[0] for entry in self._stack)  # type: ignore[misc]
        record = self._nodes.get(path)
        if record is None:
            record = self._nodes[path] = [0, 0]
        if delta > 0:
            record[0] += delta
        if nodes > record[1]:
            record[1] = nodes

    # -- aggregation ----------------------------------------------------

    @staticmethod
    def _credit(
        table: Dict[Tuple[str, ...], List[float]],
        path: Tuple[str, ...],
        seconds: float,
    ) -> None:
        entry = table.get(path)
        if entry is None:
            table[path] = [1, seconds]
        else:
            entry[0] += 1
            entry[1] += seconds

    def snapshot(self) -> Dict[str, object]:
        """JSON-able profile payload (paths joined with ``;``)."""
        return {
            "version": PROFILE_VERSION,
            "wall_seconds": time.perf_counter() - self._started,
            "frames": {
                ";".join(path): {"count": int(entry[0]), "seconds": entry[1]}
                for path, entry in sorted(self._frames.items())
            },
            "nodes": {
                ";".join(path): {"growth": entry[0], "peak": entry[1]}
                for path, entry in sorted(self._nodes.items())
            },
        }


def merge_profiles(*profiles: Optional[Dict[str, object]]) -> Dict[str, object]:
    """Additively merge profile payloads (chunk profiles → one job profile).

    Frame counts/seconds and node growth add; node peaks take the maximum;
    ``wall_seconds`` adds (it is attributed CPU-span time, and chunks run
    on distinct workers).  Empty/None inputs are skipped, mirroring
    :func:`repro.obs.metrics.merge_snapshots`.
    """
    frames: Dict[str, Dict[str, float]] = {}
    nodes: Dict[str, Dict[str, int]] = {}
    wall = 0.0
    for profile in profiles:
        if not profile:
            continue
        wall += float(profile.get("wall_seconds", 0.0))
        for path, entry in profile.get("frames", {}).items():
            merged = frames.get(path)
            if merged is None:
                frames[path] = {
                    "count": int(entry["count"]),
                    "seconds": float(entry["seconds"]),
                }
            else:
                merged["count"] += int(entry["count"])
                merged["seconds"] += float(entry["seconds"])
        for path, entry in profile.get("nodes", {}).items():
            merged_nodes = nodes.get(path)
            if merged_nodes is None:
                nodes[path] = {
                    "growth": int(entry["growth"]),
                    "peak": int(entry["peak"]),
                }
            else:
                merged_nodes["growth"] += int(entry["growth"])
                merged_nodes["peak"] = max(merged_nodes["peak"], int(entry["peak"]))
    return {
        "version": PROFILE_VERSION,
        "wall_seconds": wall,
        "frames": {path: frames[path] for path in sorted(frames)},
        "nodes": {path: nodes[path] for path in sorted(nodes)},
    }


def folded_lines(profile: Optional[Dict[str, object]]) -> List[str]:
    """Folded-stack lines (``frame;frame;op <microseconds>``) for flamegraphs.

    Values are integer microseconds of *exclusive* time, so the lines sum
    to the attributed wall time; feed them to ``flamegraph.pl`` or paste
    into https://www.speedscope.app.  Zero-microsecond frames are kept —
    they document structure (e.g. a gate that never dominated).
    """
    if not profile:
        return []
    lines = []
    for path, entry in sorted(profile.get("frames", {}).items()):
        lines.append(f"{path} {int(round(float(entry['seconds']) * 1e6))}")
    return lines


def attributed_seconds(profile: Optional[Dict[str, object]]) -> float:
    """Total exclusive time across all frames (= sum of the folded values)."""
    if not profile:
        return 0.0
    return sum(float(entry["seconds"]) for entry in profile.get("frames", {}).values())
