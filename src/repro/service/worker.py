"""Persistent worker processes for the simulation scheduler.

Each worker is a long-lived process running :func:`worker_main`: it blocks
on its private task queue, executes one chunk of trajectories at a time,
and pushes the chunk's :class:`StochasticResult` onto its private result
queue.  Between chunks of the *same job* the worker keeps its decision-
diagram backend (unique/compute tables stay populated) and its evaluation
context (the cached noiseless-reference snapshot) warm — the overhead the
old per-call ``ProcessPoolExecutor`` paid on every invocation.

Workers are crash-isolated: the scheduler detects a dead worker, respawns
it with a fresh queue, and requeues the chunk it was holding.  For
deterministic fault-injection tests, setting the ``REPRO_SERVICE_CRASH_ONCE``
environment variable to a marker-file path makes the first worker that
picks up a task after spawn die hard (``os._exit``) exactly once.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from ..circuits.circuit import QuantumCircuit
from ..noise.model import NoiseModel
from ..stochastic.properties import PropertySpec
from ..stochastic.results import StochasticResult
from ..stochastic.runner import _EvaluationContext, _make_backend, run_trajectory_span

__all__ = ["ChunkTask", "ChunkOutcome", "worker_main"]

#: Env var for deterministic crash injection (see module docstring).
CRASH_ONCE_ENV = "REPRO_SERVICE_CRASH_ONCE"

#: Warm (backend, context) pairs kept per worker, LRU-evicted beyond this.
_WARM_CACHE_LIMIT = 4


@dataclass(frozen=True)
class ChunkTask:
    """One shard of a job's trajectory range, shipped to a worker."""

    job_key: str
    chunk_index: int
    circuit: QuantumCircuit
    noise_model: NoiseModel
    properties: Tuple[PropertySpec, ...]
    backend_kind: str
    first_trajectory: int
    num_trajectories: int
    master_seed: int
    sample_shots: int
    #: Absolute ``time.monotonic()`` instant shared by every chunk of the
    #: job — one wall-clock budget for the whole job, not per chunk.  The
    #: monotonic clock is system-wide on Linux, so the instant the
    #: scheduler stamps is meaningful inside forked workers.
    deadline: Optional[float]


@dataclass(frozen=True)
class ChunkOutcome:
    """A worker's report for one chunk (result or error, never both)."""

    worker_id: int
    job_key: str
    chunk_index: int
    first_trajectory: int
    num_trajectories: int
    result: Optional[StochasticResult]
    error: Optional[str]


def _maybe_crash_for_test() -> None:
    marker = os.environ.get(CRASH_ONCE_ENV)
    if marker and not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8"):
            pass
        os._exit(1)


def worker_main(worker_id: int, task_queue, result_queue) -> None:
    """Worker process entry point: loop on tasks until the None sentinel."""
    warm: "OrderedDict[str, tuple]" = OrderedDict()
    while True:
        task = task_queue.get()
        if task is None:
            break
        _maybe_crash_for_test()
        try:
            entry = warm.get(task.job_key)
            if entry is None:
                backend = _make_backend(task.backend_kind, task.circuit.num_qubits)
                context = _EvaluationContext(task.circuit, task.backend_kind)
                warm[task.job_key] = (backend, context)
                while len(warm) > _WARM_CACHE_LIMIT:
                    warm.popitem(last=False)
            else:
                backend, context = entry
                warm.move_to_end(task.job_key)
            result = run_trajectory_span(
                task.circuit,
                task.noise_model,
                task.properties,
                task.backend_kind,
                task.first_trajectory,
                task.num_trajectories,
                task.master_seed,
                sample_shots=task.sample_shots,
                deadline=task.deadline,
                backend=backend,
                context=context,
            )
            outcome = ChunkOutcome(
                worker_id, task.job_key, task.chunk_index,
                task.first_trajectory, task.num_trajectories, result, None,
            )
        except Exception as exc:  # report, don't kill the worker
            outcome = ChunkOutcome(
                worker_id, task.job_key, task.chunk_index,
                task.first_trajectory, task.num_trajectories, None,
                f"{type(exc).__name__}: {exc}",
            )
        result_queue.put(outcome)
