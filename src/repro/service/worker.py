"""Persistent worker processes for the simulation scheduler.

Each worker is a long-lived process running :func:`worker_main`: it blocks
on its private task queue, executes one chunk of trajectories at a time,
and pushes the chunk's :class:`StochasticResult` onto its private result
queue.  Between chunks of the *same job* the worker keeps its decision-
diagram backend (unique/compute tables stay populated) and its evaluation
context (the cached noiseless-reference snapshot) warm — the overhead the
old per-call ``ProcessPoolExecutor`` paid on every invocation.

Workers are crash-isolated: the scheduler detects a dead worker, respawns
it with a fresh queue, and requeues the chunk it was holding.

Fault injection
---------------
Deterministic fault injection is driven by a :class:`~repro.faults.FaultPlan`
shipped through the ``REPRO_FAULT_PLAN`` environment variable (see
:mod:`repro.faults` and docs/ROBUSTNESS.md).  The worker consults the
plan at five sites: ``crash-before`` (die hard before executing the
chunk), ``crash-mid-chunk`` (execute part of the chunk, then die),
``hang`` (sleep past the scheduler's chunk timeout so the reaper fires),
``slow-chunk`` (added latency without death), and ``corrupt-outcome``
(tamper with the reported result so the scheduler's outcome validation
must catch it).  The pre-plan ``REPRO_SERVICE_CRASH_ONCE`` marker-file
variable remains as a deprecated alias mapping to a crash-once plan.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from ..circuits.circuit import QuantumCircuit
from ..faults.inject import LEGACY_CRASH_ONCE_ENV, FaultInjector, get_injector
from ..noise.model import NoiseModel
from ..obs.context import TraceContext
from ..stochastic.properties import PropertySpec
from ..stochastic.results import StochasticResult
from ..stochastic.runner import _EvaluationContext, _make_backend, run_trajectory_span

__all__ = ["ChunkTask", "ChunkOutcome", "worker_main", "CRASH_ONCE_ENV"]

#: Deprecated alias (see module docstring); prefer ``REPRO_FAULT_PLAN``.
CRASH_ONCE_ENV = LEGACY_CRASH_ONCE_ENV

#: Warm (backend, context) pairs kept per worker, LRU-evicted beyond this.
_WARM_CACHE_LIMIT = 4

#: Default sleep for a ``hang`` fault with no ``seconds`` — far beyond any
#: sane chunk timeout, so the scheduler's reaper is what ends the hang.
_DEFAULT_HANG_SECONDS = 3600.0


@dataclass(frozen=True)
class ChunkTask:
    """One shard of a job's trajectory range, shipped to a worker."""

    job_key: str
    chunk_index: int
    circuit: QuantumCircuit
    noise_model: NoiseModel
    properties: Tuple[PropertySpec, ...]
    backend_kind: str
    first_trajectory: int
    num_trajectories: int
    master_seed: int
    sample_shots: int
    #: Absolute ``time.monotonic()`` instant shared by every chunk of the
    #: job — one wall-clock budget for the whole job, not per chunk.  The
    #: monotonic clock is system-wide on Linux, so the instant the
    #: scheduler stamps is meaningful inside forked workers.
    deadline: Optional[float]
    #: Span context stamped per dispatch by the scheduler (retries get a
    #: fresh one carrying the attempt number); observational only — it
    #: never participates in the content-addressed job key.
    trace: Optional[TraceContext] = None
    #: Fencing token of the chunk's ownership lease, stamped per dispatch
    #: and echoed in the outcome.  The scheduler rejects commits whose
    #: token is stale (the lease expired and the chunk was re-leased), so
    #: duplicate completions are idempotent — at-most-once-committed.
    fencing_token: Optional[int] = None


@dataclass(frozen=True)
class ChunkOutcome:
    """A worker's report for one chunk (result or error, never both)."""

    worker_id: int
    job_key: str
    chunk_index: int
    first_trajectory: int
    num_trajectories: int
    result: Optional[StochasticResult]
    error: Optional[str]
    #: Echo of :attr:`ChunkTask.fencing_token` (None for pre-lease tasks).
    fencing_token: Optional[int] = None


def _site_attrs(worker_id: int, task: ChunkTask) -> dict:
    return {
        "job_key": task.job_key,
        "worker_id": worker_id,
        "chunk_index": task.chunk_index,
    }


def _pre_execution_faults(
    injector: Optional[FaultInjector], worker_id: int, task: ChunkTask
) -> bool:
    """Apply faults that strike before the chunk runs.

    Returns True when a ``crash-mid-chunk`` fault is armed for this task
    (the caller executes part of the chunk, then dies).
    """
    if injector is None:
        return False
    attrs = _site_attrs(worker_id, task)
    if injector.fire("crash-before", **attrs):
        os._exit(1)
    slow = injector.fire("slow-chunk", **attrs)
    if slow is not None:
        time.sleep(slow.seconds or 0.05)
    hang = injector.fire("hang", **attrs)
    if hang is not None:
        # Sleep in small slices so a terminate() lands promptly.
        deadline = time.monotonic() + (hang.seconds or _DEFAULT_HANG_SECONDS)
        while time.monotonic() < deadline:
            time.sleep(0.05)
    return injector.fire("crash-mid-chunk", **attrs) is not None


def _corrupt_outcome_fault(
    injector: Optional[FaultInjector],
    worker_id: int,
    task: ChunkTask,
    result: StochasticResult,
) -> StochasticResult:
    """Tamper with a finished chunk's result if a corrupt-outcome fault fires.

    The corruption (a completed-trajectory count exceeding the chunk's
    budget) is exactly the class of inconsistency the scheduler's outcome
    validation rejects, forcing a clean re-execution.
    """
    if injector is None:
        return result
    if injector.fire("corrupt-outcome", **_site_attrs(worker_id, task)):
        corrupted = result.copy()
        corrupted.completed_trajectories = task.num_trajectories + 1
        return corrupted
    return result


def worker_main(worker_id: int, task_queue, result_queue) -> None:
    """Worker process entry point: loop on tasks until the None sentinel."""
    injector = get_injector()
    warm: "OrderedDict[str, tuple]" = OrderedDict()
    while True:
        task = task_queue.get()
        if task is None:
            break
        crash_mid = _pre_execution_faults(injector, worker_id, task)
        try:
            entry = warm.get(task.job_key)
            if entry is None:
                # The context carries the job's compiled gate plan and
                # prefix-sharing plan (plus the ideal-state snapshot), so
                # chunks after the first skip compilation entirely — the
                # prefix engine rides the warm cache with no extra plumbing.
                backend = _make_backend(task.backend_kind, task.circuit.num_qubits)
                context = _EvaluationContext(task.circuit, task.backend_kind)
                warm[task.job_key] = (backend, context)
                while len(warm) > _WARM_CACHE_LIMIT:
                    warm.popitem(last=False)
            else:
                backend, context = entry
                warm.move_to_end(task.job_key)
            if crash_mid:
                # Burn part of the chunk so the death is mid-execution,
                # then die hard without reporting; the partial work is
                # discarded and the scheduler re-executes the whole chunk
                # (determinism: per-trajectory seeds make the retry
                # reproduce identical values).
                run_trajectory_span(
                    task.circuit,
                    task.noise_model,
                    task.properties,
                    task.backend_kind,
                    task.first_trajectory,
                    max(1, task.num_trajectories // 2),
                    task.master_seed,
                    sample_shots=task.sample_shots,
                    deadline=task.deadline,
                    backend=backend,
                    context=context,
                )
                os._exit(1)
            result = run_trajectory_span(
                task.circuit,
                task.noise_model,
                task.properties,
                task.backend_kind,
                task.first_trajectory,
                task.num_trajectories,
                task.master_seed,
                sample_shots=task.sample_shots,
                deadline=task.deadline,
                backend=backend,
                context=context,
                trace=task.trace,
            )
            result = _corrupt_outcome_fault(injector, worker_id, task, result)
            outcome = ChunkOutcome(
                worker_id, task.job_key, task.chunk_index,
                task.first_trajectory, task.num_trajectories, result, None,
                fencing_token=task.fencing_token,
            )
        except Exception as exc:  # report, don't kill the worker
            outcome = ChunkOutcome(
                worker_id, task.job_key, task.chunk_index,
                task.first_trajectory, task.num_trajectories, None,
                f"{type(exc).__name__}: {exc}",
                fencing_token=task.fencing_token,
            )
        result_queue.put(outcome)
