"""Crash-safe write-ahead job journal (``repro.journal/v1``).

The journal is the durable record of what the service *was doing*: an
append-only JSONL file under the store directory where the scheduler
logs every job submission, chunk plan, chunk-ownership lease, committed
chunk result, and job completion.  A ``repro serve --resume`` after a
hard death (``kill -9``, power loss, OOM) replays the journal and
reconstructs every incomplete job — its :class:`~repro.service.job.JobSpec`,
its *original* chunk plan, and the set of chunk results that already
committed — then re-enqueues only the missing chunks.  Because per-
trajectory seeds derive from absolute trajectory indices and the final
merge folds chunk results in chunk-index order, the resumed result is
**bit-identical** to an uninterrupted run no matter which chunk subset
had completed when the process died.

Durability rules:

* every appended record is flushed and ``fsync``'d before the append
  returns (configurable to a small interval for high-rate streams), so
  a committed chunk result can never be lost to the page cache;
* replay tolerates a **torn trailing record** — a line cut short by the
  crash — by skipping it (counted in ``journal.replay.torn_skipped``);
  undecodable mid-file lines are likewise skipped, never fatal;
* compaction is **atomic**: live records are rewritten to a temporary
  file, fsync'd, and ``os.replace``'d over the journal, so readers (and
  a crash mid-rotation) see the old journal or the new one, never a
  partial mix;
* writes degrade, they do not kill the service: an ``ENOSPC`` (or any
  ``OSError``) puts the journal in a cooldown window during which
  appends are shed and counted (``journal.write.errors`` /
  ``journal.degraded.skipped``) — checkpoint granularity is lost before
  results are (the store applies the same policy to its checkpoint
  writes; see docs/ROBUSTNESS.md "Durability & restart semantics").

Record taxonomy (one JSON object per line, ``"rec"`` discriminates):

==============  =========================================================
``header``      ``{"rec","schema"}`` — first line after creation/rotation
``submit``      ``{"rec","job","spec"}`` — full canonical JobSpec dict
``plan``        ``{"rec","job","chunks":[[i,first,count]..],"base":[..],
                "base_result"?}``
``lease``       ``{"rec","job","chunk","owner","token","deadline"}``
``chunk-done``  ``{"rec","job","chunk","first","count","token","result"}``
``job-done``    ``{"rec","job","status","error"?}``
==============  =========================================================

Fault-injection sites (see :mod:`repro.faults`): ``torn-journal``
truncates the file mid-record after an append (replay must skip the torn
tail) and ``enospc-journal`` fails the append with ``ENOSPC`` (the
degraded mode must engage).  Both match on ``operation=<record type>``.
"""

from __future__ import annotations

import errno
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, IO, List, Optional, Tuple

from ..faults.inject import get_injector
from ..obs.metrics import MetricsRegistry

__all__ = [
    "JOURNAL_SCHEMA",
    "JobJournal",
    "JournalJob",
    "journal_path",
    "replay_journal",
]

#: Journal record schema; bump when the record layout changes.
JOURNAL_SCHEMA = "repro.journal/v1"

#: Default compaction threshold: rotate once the file outgrows this.
DEFAULT_MAX_BYTES = 8 * 1024 * 1024

#: Seconds the journal sheds writes after a failed append (ENOSPC etc.).
DEFAULT_DEGRADED_COOLDOWN = 5.0

Span = Tuple[int, int]
ChunkPlanEntry = Tuple[int, int, int]  #: (chunk_index, first, count)


def journal_path(store_directory: str) -> str:
    """Canonical journal location inside a store directory."""
    return os.path.join(store_directory, "journal", "wal.jsonl")


@dataclass
class JournalJob:
    """Replayed state of one journaled job."""

    key: str
    spec_dict: Optional[Dict[str, object]] = None
    #: Original chunk plan: (index, first_trajectory, num_trajectories).
    plan: List[ChunkPlanEntry] = field(default_factory=list)
    #: Checkpoint spans the plan was laid over (empty for fresh jobs —
    #: only a job that itself resumed from a checkpoint has a base).
    base_spans: List[Span] = field(default_factory=list)
    #: The checkpoint partial the plan was laid over (result payload
    #: dict), so a journal resume folds the *same* base the original run
    #: folded — without it, bit-identity would only hold for fresh jobs.
    base_result: Optional[Dict[str, object]] = None
    #: Committed chunk results, by chunk index (payload dicts).
    completed: Dict[int, Dict[str, object]] = field(default_factory=dict)
    #: Highest fencing token ever granted for this job (resume must
    #: issue strictly greater tokens so stale commits stay rejectable).
    max_token: int = -1
    #: Terminal status ("completed" / "failed" / "cancelled"), or None
    #: while the job is still incomplete — the resumable set.
    status: Optional[str] = None
    error: Optional[str] = None

    @property
    def done(self) -> bool:
        return self.status is not None

    def completed_trajectories(self) -> int:
        by_index = {index: (first, count) for index, first, count in self.plan}
        total = sum(count for _, count in self.base_spans)
        for index in self.completed:
            if index in by_index:
                total += by_index[index][1]
        return total

    def planned_trajectories(self) -> int:
        return (
            sum(count for _, _, count in self.plan)
            + sum(count for _, count in self.base_spans)
        )


class _ReplayState:
    """Shared record-folding logic for replay and the live mirror."""

    def __init__(self) -> None:
        self.jobs: Dict[str, JournalJob] = {}
        self.order: List[str] = []

    def _job(self, key: str) -> JournalJob:
        job = self.jobs.get(key)
        if job is None:
            job = JournalJob(key=key)
            self.jobs[key] = job
            self.order.append(key)
        return job

    def apply(self, record: Dict[str, object]) -> None:
        kind = record.get("rec")
        if kind == "header" or not isinstance(record.get("job"), str):
            return
        key = str(record["job"])
        if kind == "submit":
            job = self._job(key)
            spec = record.get("spec")
            if isinstance(spec, dict):
                job.spec_dict = spec
            # A resubmission of a finished key starts a fresh lifecycle.
            job.status = None
            job.error = None
        elif kind == "plan":
            job = self._job(key)
            chunks = record.get("chunks")
            if isinstance(chunks, list):
                job.plan = [
                    (int(index), int(first), int(count))
                    for index, first, count in chunks
                ]
            base = record.get("base")
            if isinstance(base, list):
                job.base_spans = [(int(f), int(c)) for f, c in base]
            base_result = record.get("base_result")
            job.base_result = base_result if isinstance(base_result, dict) else None
        elif kind == "lease":
            job = self._job(key)
            token = record.get("token")
            if isinstance(token, int):
                job.max_token = max(job.max_token, token)
        elif kind == "chunk-done":
            job = self._job(key)
            result = record.get("result")
            if isinstance(result, dict):
                job.completed[int(record["chunk"])] = result
            token = record.get("token")
            if isinstance(token, int):
                job.max_token = max(job.max_token, token)
        elif kind == "job-done":
            job = self._job(key)
            job.status = str(record.get("status", "completed"))
            error = record.get("error")
            job.error = None if error is None else str(error)

    def incomplete(self) -> List[JournalJob]:
        return [self.jobs[key] for key in self.order if not self.jobs[key].done]


def _fold_lines(
    raw: bytes, metrics: Optional[MetricsRegistry] = None
) -> _ReplayState:
    """Fold journal bytes into replayed job state, skipping torn records.

    The final line, when undecodable or not newline-terminated, is a torn
    trailing record (the documented crash signature) and is skipped.
    Undecodable *interior* lines — torn writes that later appends wrote
    past — are skipped too; both cases are counted, never fatal.
    """
    state = _ReplayState()
    if not raw:
        return state
    lines = raw.split(b"\n")
    trailing_complete = raw.endswith(b"\n")
    if trailing_complete:
        lines = lines[:-1]  # the split artifact after the final newline
    for position, line in enumerate(lines):
        if not line.strip():
            continue
        last = position == len(lines) - 1
        try:
            record = json.loads(line.decode("utf-8"))
            if not isinstance(record, dict):
                raise ValueError("record is not a JSON object")
        except (ValueError, UnicodeDecodeError):
            if metrics is not None:
                name = (
                    "journal.replay.torn_skipped"
                    if last and not trailing_complete
                    else "journal.replay.bad_skipped"
                )
                metrics.counter(name).inc()
            continue
        if last and not trailing_complete:
            # Structurally valid JSON can still be a torn record whose
            # truncation happens to parse (e.g. a trailing digit lost
            # from a token).  Only fully newline-terminated records are
            # trusted; an unterminated tail is always skipped.
            if metrics is not None:
                metrics.counter("journal.replay.torn_skipped").inc()
            continue
        if metrics is not None:
            metrics.counter("journal.replay.records").inc()
        state.apply(record)
    return state


def replay_journal(
    path: str, metrics: Optional[MetricsRegistry] = None
) -> Dict[str, JournalJob]:
    """Replay a journal file read-only; returns job state by key.

    Missing files replay to an empty state.  Replaying the same journal
    any number of times yields the same state (records are absorbing:
    ``chunk-done`` for an already-completed chunk and repeated
    ``job-done`` records are no-ops).
    """
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError:
        return {}
    return _fold_lines(raw, metrics).jobs


class JobJournal:
    """Append-side of the journal: fsync'd writes, atomic compaction.

    Opening a journal replays whatever the previous process left behind,
    so :meth:`incomplete_jobs` immediately answers "what should
    ``--resume`` restart?".  The open also compacts: records belonging
    to finished jobs are dropped in one atomic rotation, bounding replay
    cost over the service's lifetime.
    """

    def __init__(
        self,
        path: str,
        fsync_interval: float = 0.0,
        max_bytes: int = DEFAULT_MAX_BYTES,
        degraded_cooldown: float = DEFAULT_DEGRADED_COOLDOWN,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.path = path
        self.fsync_interval = fsync_interval
        self.max_bytes = max_bytes
        self.degraded_cooldown = degraded_cooldown
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        for name in (
            "journal.records.written",
            "journal.write.errors",
            "journal.degraded.skipped",
            "journal.rotations",
            "journal.replay.records",
            "journal.replay.torn_skipped",
            "journal.replay.bad_skipped",
        ):
            self.metrics.counter(name)
        self._lock = threading.RLock()
        self._handle: Optional[IO[bytes]] = None
        self._last_fsync = 0.0
        self._degraded_until = 0.0
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except OSError:
            raw = b""
        self._state = _fold_lines(raw, self.metrics)
        # Compact away finished jobs (and any torn tail) on open, then
        # append from a clean, fully-terminated file.
        self._rotate_locked()

    # -- record appends ----------------------------------------------------

    def job_submitted(self, key: str, spec_dict: Dict[str, object]) -> None:
        self._append({"rec": "submit", "job": key, "spec": spec_dict})

    def plan_recorded(
        self,
        key: str,
        chunks: List[ChunkPlanEntry],
        base_spans: List[Span],
        base_result: Optional[Dict[str, object]] = None,
    ) -> None:
        record: Dict[str, object] = {
            "rec": "plan",
            "job": key,
            "chunks": [[i, first, count] for i, first, count in chunks],
            "base": [[first, count] for first, count in base_spans],
        }
        if base_result is not None:
            record["base_result"] = base_result
        self._append(record)

    def lease_granted(
        self, key: str, chunk: int, owner: str, token: int, deadline: float
    ) -> None:
        self._append(
            {
                "rec": "lease",
                "job": key,
                "chunk": chunk,
                "owner": owner,
                "token": token,
                "deadline": deadline,
            }
        )

    def chunk_done(
        self,
        key: str,
        chunk: int,
        first: int,
        count: int,
        token: int,
        result_dict: Dict[str, object],
    ) -> None:
        self._append(
            {
                "rec": "chunk-done",
                "job": key,
                "chunk": chunk,
                "first": first,
                "count": count,
                "token": token,
                "result": result_dict,
            }
        )

    def job_done(self, key: str, status: str, error: Optional[str] = None) -> None:
        record: Dict[str, object] = {"rec": "job-done", "job": key, "status": status}
        if error is not None:
            record["error"] = error
        self._append(record)

    # -- queries -----------------------------------------------------------

    def incomplete_jobs(self) -> List[JournalJob]:
        """Jobs with a ``submit`` but no ``job-done`` record, in order."""
        with self._lock:
            return list(self._state.incomplete())

    def job(self, key: str) -> Optional[JournalJob]:
        with self._lock:
            return self._state.jobs.get(key)

    @property
    def degraded(self) -> bool:
        """True while appends are being shed after a write failure."""
        return time.monotonic() < self._degraded_until

    # -- mechanics ---------------------------------------------------------

    def _ensure_open(self) -> IO[bytes]:
        if self._handle is None:
            self._handle = open(self.path, "ab")
        return self._handle

    def _append(self, record: Dict[str, object]) -> None:
        line = (
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        ).encode("utf-8")
        with self._lock:
            # The in-memory mirror advances even when the disk write is
            # shed: the running process stays correct, only crash
            # durability for the shed record is lost (and counted).
            self._state.apply(record)
            now = time.monotonic()
            if now < self._degraded_until:
                self.metrics.counter("journal.degraded.skipped").inc()
                return
            injector = get_injector()
            try:
                if injector is not None and injector.fire(
                    "enospc-journal",
                    operation=str(record.get("rec")),
                    job_key=record.get("job"),
                ):
                    raise OSError(errno.ENOSPC, "No space left on device [injected]")
                handle = self._ensure_open()
                handle.write(line)
                handle.flush()
                if self.fsync_interval <= 0.0 or (
                    now - self._last_fsync >= self.fsync_interval
                ):
                    os.fsync(handle.fileno())
                    self._last_fsync = now
            except OSError:
                self.metrics.counter("journal.write.errors").inc()
                self._degraded_until = now + self.degraded_cooldown
                return
            self.metrics.counter("journal.records.written").inc()
            if injector is not None and injector.fire(
                "torn-journal",
                operation=str(record.get("rec")),
                job_key=record.get("job"),
            ):
                self._tear_tail_locked(len(line))
                return
            if record.get("rec") == "job-done":
                self._maybe_compact_locked()
            else:
                self._maybe_rotate_for_size_locked()

    def _tear_tail_locked(self, line_length: int) -> None:
        """Simulate a torn write: cut the freshly appended record short."""
        try:
            handle = self._ensure_open()
            handle.flush()
            size = os.path.getsize(self.path)
            with open(self.path, "r+b") as tear:
                tear.truncate(max(0, size - line_length // 2))
            # Reopen in append mode so later writes land after the tear
            # (exactly what a real crash-then-restart interleaving does).
            handle.close()
            self._handle = None
        except OSError:
            pass

    def _maybe_compact_locked(self) -> None:
        """Job completion makes its records dead weight — compact when
        the dead fraction plausibly dominates (cheap heuristic: any
        finished job plus a file above a slice of the rotation budget)."""
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return
        finished = len(self._state.jobs) - len(self._state.incomplete())
        if finished and size > self.max_bytes // 8:
            self._rotate_locked()

    def _maybe_rotate_for_size_locked(self) -> None:
        try:
            if os.path.getsize(self.path) > self.max_bytes:
                self._rotate_locked()
        except OSError:
            pass

    def _live_records(self) -> List[Dict[str, object]]:
        records: List[Dict[str, object]] = []
        for job in self._state.incomplete():
            if job.spec_dict is not None:
                records.append({"rec": "submit", "job": job.key, "spec": job.spec_dict})
            if job.plan:
                plan_record: Dict[str, object] = {
                    "rec": "plan",
                    "job": job.key,
                    "chunks": [[i, f, c] for i, f, c in job.plan],
                    "base": [[f, c] for f, c in job.base_spans],
                }
                if job.base_result is not None:
                    plan_record["base_result"] = job.base_result
                records.append(plan_record)
            if job.max_token >= 0:
                # One summary lease record preserves the token horizon.
                records.append(
                    {
                        "rec": "lease",
                        "job": job.key,
                        "chunk": -1,
                        "owner": "compaction",
                        "token": job.max_token,
                        "deadline": 0.0,
                    }
                )
            for index in sorted(job.completed):
                first, count = 0, 0
                for i, f, c in job.plan:
                    if i == index:
                        first, count = f, c
                        break
                records.append(
                    {
                        "rec": "chunk-done",
                        "job": job.key,
                        "chunk": index,
                        "first": first,
                        "count": count,
                        "token": job.max_token,
                        "result": job.completed[index],
                    }
                )
        return records

    def _rotate_locked(self) -> None:
        """Atomically rewrite the journal with only live records."""
        tmp = f"{self.path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as handle:
                header = json.dumps(
                    {"rec": "header", "schema": JOURNAL_SCHEMA},
                    sort_keys=True,
                    separators=(",", ":"),
                )
                handle.write((header + "\n").encode("utf-8"))
                for record in self._live_records():
                    line = json.dumps(record, sort_keys=True, separators=(",", ":"))
                    handle.write((line + "\n").encode("utf-8"))
                handle.flush()
                os.fsync(handle.fileno())
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            os.replace(tmp, self.path)
            self.metrics.counter("journal.rotations").inc()
            # Drop finished jobs from the mirror — they are gone on disk.
            for key in list(self._state.jobs):
                if self._state.jobs[key].done:
                    del self._state.jobs[key]
            self._state.order = [k for k in self._state.order if k in self._state.jobs]
        except OSError:
            self.metrics.counter("journal.write.errors").inc()
            self._degraded_until = time.monotonic() + self.degraded_cooldown
            try:
                os.remove(tmp)
            except OSError:
                pass

    def flush(self) -> None:
        """Force any buffered bytes to disk (drain path)."""
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.flush()
                    os.fsync(self._handle.fileno())
                except OSError:
                    self.metrics.counter("journal.write.errors").inc()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.flush()
                    os.fsync(self._handle.fileno())
                except OSError:
                    pass
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
