"""Job model: canonically serialised, content-addressed simulation work.

A :class:`JobSpec` captures everything that determines a stochastic
simulation's output — circuit (as OpenQASM 2.0 text), noise model,
property list, trajectory budget ``M``, master seed, backend kind, sampling
shots, and wall-clock budget.  Its canonical JSON form is hashed (SHA-256)
into a *job key*: two submissions with byte-identical canonical forms are
the same job, which is what lets the result store answer resubmissions
without running a single trajectory.

The per-trajectory seeds are derived from the master seed and the absolute
trajectory index (see ``repro.stochastic.runner``), so a job's result is a
pure function of its spec — the foundation the cache relies on.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from ..circuits.circuit import QuantumCircuit
from ..circuits.qasm import parse_qasm
from ..noise.model import ErrorRates, NoiseModel
from ..stochastic.properties import (
    BasisProbability,
    ClassicalOutcome,
    ExpectationZ,
    IdealFidelity,
    PauliExpectation,
    PropertySpec,
    StateFidelity,
)

__all__ = ["JobSpec", "JobState", "JobStatus", "StreamingEstimate"]

#: Canonical-format version; bump when the serialised layout changes so
#: stale cache entries can never be misread as current ones.
SPEC_VERSION = 1


class JobState(str, enum.Enum):
    """Lifecycle of a submitted job."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"


def _rates_to_dict(rates: ErrorRates) -> Dict[str, float]:
    return {name: getattr(rates, name) for name in ErrorRates._FIELDS}


def _rates_from_dict(data: Dict[str, float]) -> ErrorRates:
    return ErrorRates(**{name: float(data.get(name, 0.0)) for name in ErrorRates._FIELDS})


def noise_to_dict(model: NoiseModel) -> Dict[str, object]:
    """Canonical plain-JSON form of a noise model."""
    return {
        "default": _rates_to_dict(model.default),
        "gate_overrides": [
            [name, _rates_to_dict(rates)]
            for name, rates in sorted(model.gate_overrides)
        ],
        "qubit_overrides": [
            [qubit, _rates_to_dict(rates)]
            for qubit, rates in sorted(model.qubit_overrides)
        ],
        "noisy_measure": model.noisy_measure,
        "damping_mode": model.damping_mode,
    }


def noise_from_dict(data: Dict[str, object]) -> NoiseModel:
    """Inverse of :func:`noise_to_dict`."""
    return NoiseModel(
        default=_rates_from_dict(data["default"]),
        gate_overrides=tuple(
            (str(name), _rates_from_dict(rates)) for name, rates in data["gate_overrides"]
        ),
        qubit_overrides=tuple(
            (int(qubit), _rates_from_dict(rates)) for qubit, rates in data["qubit_overrides"]
        ),
        noisy_measure=bool(data["noisy_measure"]),
        damping_mode=str(data["damping_mode"]),
    )


def property_to_dict(prop: PropertySpec) -> Dict[str, object]:
    """Canonical plain-JSON form of one property specification."""
    if isinstance(prop, BasisProbability):
        return {"type": "basis_probability", "bits": prop.bits}
    if isinstance(prop, StateFidelity):
        return {
            "type": "state_fidelity",
            "label": prop.label,
            "target": [[value.real, value.imag] for value in prop.target],
        }
    if isinstance(prop, IdealFidelity):
        return {"type": "ideal_fidelity"}
    if isinstance(prop, ExpectationZ):
        return {"type": "expectation_z", "qubit": prop.qubit}
    if isinstance(prop, PauliExpectation):
        return {"type": "pauli_expectation", "pauli": prop.pauli}
    if isinstance(prop, ClassicalOutcome):
        return {"type": "classical_outcome", "value": prop.value}
    raise TypeError(f"unsupported property specification: {prop!r}")


def property_from_dict(data: Dict[str, object]) -> PropertySpec:
    """Inverse of :func:`property_to_dict`."""
    kind = data["type"]
    if kind == "basis_probability":
        return BasisProbability(str(data["bits"]))
    if kind == "state_fidelity":
        return StateFidelity(
            target=tuple(complex(re, im) for re, im in data["target"]),
            label=str(data["label"]),
        )
    if kind == "ideal_fidelity":
        return IdealFidelity()
    if kind == "expectation_z":
        return ExpectationZ(int(data["qubit"]))
    if kind == "pauli_expectation":
        return PauliExpectation(str(data["pauli"]))
    if kind == "classical_outcome":
        return ClassicalOutcome(int(data["value"]))
    raise ValueError(f"unknown property type {kind!r}")


@dataclass(frozen=True)
class JobSpec:
    """Complete, content-addressable description of one simulation job."""

    circuit: QuantumCircuit
    noise_model: NoiseModel
    properties: Tuple[PropertySpec, ...] = ()
    trajectories: int = 1000
    seed: int = 0
    backend_kind: str = "dd"
    sample_shots: int = 1
    timeout: Optional[float] = None
    #: Execution-method request: ``"stochastic"`` (Monte-Carlo sampling),
    #: ``"exact"`` (forced density-matrix DD), or ``"auto"`` (the
    #: scheduler's cost model decides; see :mod:`repro.exact.cost`).
    method: str = "stochastic"

    def __post_init__(self) -> None:
        if self.trajectories < 1:
            raise ValueError("trajectories must be >= 1")
        if self.method not in ("stochastic", "exact", "auto"):
            raise ValueError(
                f"method must be 'stochastic', 'exact', or 'auto', got {self.method!r}"
            )
        object.__setattr__(self, "properties", tuple(self.properties))

    @classmethod
    def build(
        cls,
        circuit: QuantumCircuit,
        noise_model: Optional[NoiseModel] = None,
        properties: Sequence[PropertySpec] = (),
        trajectories: int = 1000,
        seed: int = 0,
        backend_kind: str = "dd",
        sample_shots: int = 1,
        timeout: Optional[float] = None,
        method: str = "stochastic",
    ) -> "JobSpec":
        """Convenience constructor mirroring ``simulate_stochastic``."""
        return cls(
            circuit=circuit,
            noise_model=noise_model or NoiseModel.paper_defaults(),
            properties=tuple(properties),
            trajectories=trajectories,
            seed=seed,
            backend_kind=backend_kind,
            sample_shots=sample_shots,
            timeout=timeout,
            method=method,
        )

    def to_dict(self) -> Dict[str, object]:
        """Canonical plain-JSON form (the input to the content hash)."""
        payload = {
            "version": SPEC_VERSION,
            "circuit_name": self.circuit.name,
            "qasm": self.circuit.to_qasm(),
            "noise": noise_to_dict(self.noise_model),
            "properties": [property_to_dict(prop) for prop in self.properties],
            "trajectories": self.trajectories,
            "seed": self.seed,
            "backend": self.backend_kind,
            "sample_shots": self.sample_shots,
            "timeout": self.timeout,
        }
        # Omitted when default: pre-hybrid specs keep byte-identical
        # canonical forms, so existing job keys (and cached results) stay
        # valid without a SPEC_VERSION bump.
        if self.method != "stochastic":
            payload["method"] = self.method
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "JobSpec":
        """Inverse of :meth:`to_dict`."""
        version = data.get("version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise ValueError(f"unsupported job spec version {version!r}")
        circuit = parse_qasm(str(data["qasm"]), name=str(data["circuit_name"]))
        return cls(
            circuit=circuit,
            noise_model=noise_from_dict(data["noise"]),
            properties=tuple(property_from_dict(p) for p in data["properties"]),
            trajectories=int(data["trajectories"]),
            seed=int(data["seed"]),
            backend_kind=str(data["backend"]),
            sample_shots=int(data["sample_shots"]),
            timeout=None if data["timeout"] is None else float(data["timeout"]),
            method=str(data.get("method", "stochastic")),
        )

    def canonical_json(self) -> str:
        """Deterministic serialisation: sorted keys, no whitespace."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":"), ensure_ascii=True
        )

    def job_key(self) -> str:
        """SHA-256 content address of the canonical form."""
        return hashlib.sha256(self.canonical_json().encode("ascii")).hexdigest()


@dataclass(frozen=True)
class StreamingEstimate:
    """Point-in-time view of one property's running estimate."""

    name: str
    mean: float
    halfwidth: float  #: 95 % Hoeffding confidence half-width
    count: int

    @property
    def interval(self) -> Tuple[float, float]:
        return self.mean - self.halfwidth, self.mean + self.halfwidth


@dataclass
class JobStatus:
    """Snapshot of a job's progress, pollable while it runs."""

    key: str
    state: JobState
    circuit_name: str = ""
    requested_trajectories: int = 0
    completed_trajectories: int = 0
    estimates: Dict[str, StreamingEstimate] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    retries: int = 0
    cached: bool = False
    #: The *resolved* execution method ("stochastic" or "exact") — for
    #: ``method="auto"`` specs this records what the cost model chose.
    method: str = "stochastic"
    error: Optional[str] = None
    #: Observability snapshot merged from the chunk results seen so far
    #: (see :mod:`repro.obs`); empty until the first chunk reports.
    metrics: Dict[str, object] = field(default_factory=dict)

    @property
    def progress(self) -> float:
        """Fraction of the trajectory budget completed, in [0, 1]."""
        if self.requested_trajectories <= 0:
            return 0.0
        return min(1.0, self.completed_trajectories / self.requested_trajectories)

    def render(self) -> str:
        """Human-readable multi-line report (used by ``repro status``)."""
        lines = [
            f"job {self.key[:16]}… [{self.state.value}]"
            + (" (cache hit)" if self.cached else ""),
            f"  circuit: {self.circuit_name}",
            f"  method: {self.method}",
        ]
        if self.method != "exact":
            lines.append(
                f"  trajectories: {self.completed_trajectories}/"
                f"{self.requested_trajectories} ({100.0 * self.progress:.1f}%)"
            )
        lines.append(
            f"  elapsed: {self.elapsed_seconds:.3f} s"
            + (f", chunk retries: {self.retries}" if self.retries else "")
        )
        for name, estimate in sorted(self.estimates.items()):
            low, high = estimate.interval
            lines.append(
                f"  {name}: {estimate.mean:.6f} "
                f"(95% Hoeffding [{low:.6f}, {high:.6f}], n={estimate.count})"
            )
        if self.error:
            lines.append(f"  error: {self.error}")
        return "\n".join(lines)
