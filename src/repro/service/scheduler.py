"""Sharded job scheduler over a persistent warm worker pool.

The scheduler accepts :class:`JobSpec` submissions, shards each job's ``M``
trajectories into chunks, and feeds the chunks to long-lived worker
processes (:mod:`repro.service.worker`).  Because per-trajectory seeds are
derived from the absolute trajectory index, any sharding — and any retry
or re-execution of a chunk — reproduces the same per-trajectory values, so
the merged job result is a pure function of the spec.

Key behaviours:

* **Streaming aggregation** — partial chunk results merge into a running
  aggregate the moment they arrive; :meth:`Scheduler.status` exposes the
  current mean / Hoeffding half-width / completed-trajectory count while
  the job is still running.
* **Content-addressed caching** — submissions are checked against the
  :class:`ResultStore` first: a byte-identical resubmission completes
  instantly without dispatching a single chunk, and a job with an on-disk
  checkpoint resumes from its completed spans rather than trajectory 0.
* **Fault tolerance** — a worker that dies (or errors) has its chunk
  requeued with bounded retries and the worker respawned after an
  exponential backoff; exceeding the retry budget fails the job without
  wedging the scheduler.  Two self-protection layers sit on top
  (docs/ROBUSTNESS.md):

  - *poison-chunk quarantine* — a chunk whose execution reliably **kills**
    its worker is quarantined after ``poison_retries`` fatal attempts and
    the job fails fast with a structured
    :class:`~repro.errors.PoisonChunkError` diagnosis instead of
    respawn-retrying forever;
  - *respawn circuit breaker* — a respawn storm (``breaker_threshold``
    worker deaths inside ``breaker_window`` seconds) fails the pending
    jobs with :class:`~repro.errors.WorkerPoolBrokenError` and resets,
    so a wedged environment produces one clear error, not an unbounded
    fork storm.

* **Outcome validation** — chunk results are sanity-checked (trajectory
  counts and estimate counts must be internally consistent) before they
  merge; a corrupt outcome is rejected and the chunk re-executed.
* **Determinism** — the final result is re-merged from chunk results in
  chunk-index order, so it is bit-identical for a given chunk plan no
  matter how many workers raced, which worker ran what, in which order
  chunks finished, or which faults forced re-execution.
* **Hybrid dispatch** — a spec may request ``method="exact"`` (one-pass
  density-matrix DD evaluation, no trajectories) or ``method="auto"``
  (the :mod:`repro.exact.cost` model picks the cheaper side).  Exact jobs
  run synchronously in the submitter thread — there is nothing to shard —
  and an exact run that outgrows its rho-DD node ceiling mid-flight
  *falls back* to the stochastic path with the job's original chunk plan,
  so the fallback result is bit-identical to a job that was never
  dispatched exact at all (``dispatch.fallback`` counts these).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import socket
import threading
import time
from collections import deque
from dataclasses import replace
from queue import Empty
from typing import Deque, Dict, List, Optional, Set, Tuple

from ..errors import (
    JobCancelledError,
    JobFailedError,
    PoisonChunkError,
    ResourceLimitError,
    SchedulerError,
    WorkerPoolBrokenError,
    format_reasons,
)
from ..exact import ExactSimulator, estimate_costs, exact_unsupported_reason
from ..exact.cost import DispatchDecision
from ..exact.simulator import default_node_ceiling
from ..faults.inject import get_injector
from ..obs.context import job_trace_context
from ..obs.ledger import RunLedger, circuit_fingerprint
from ..obs.metrics import MetricsRegistry, merge_snapshots
from ..obs.tracing import Tracer
from ..stochastic.results import PropertyEstimate, StochasticResult
from .job import JobSpec, JobState, JobStatus, StreamingEstimate
from .journal import ChunkPlanEntry, JobJournal
from .store import ResultStore, Span
from .worker import ChunkOutcome, ChunkTask, worker_main

__all__ = [
    "Scheduler",
    "SchedulerError",
    "JobFailedError",
    "JobCancelledError",
    "PoisonChunkError",
    "WorkerPoolBrokenError",
]

#: Seconds a timed-out job waits for its in-flight chunks to report their
#: partial trajectories before finalizing without them.  Chunks observe the
#: same absolute deadline the scheduler does, so they normally drain within
#: one trajectory's latency — the grace only bounds a wedged straggler.
_TIMEOUT_DRAIN_GRACE = 1.0


def _remaining_spans(total: int, done: List[Span]) -> List[Span]:
    """Complement of the completed spans within ``range(total)``."""
    remaining: List[Span] = []
    cursor = 0
    for start, count in sorted(done):
        end = min(start + count, total)
        start = max(start, cursor)
        if start > cursor:
            remaining.append((cursor, start - cursor))
        cursor = max(cursor, end)
    if cursor < total:
        remaining.append((cursor, total - cursor))
    return remaining


def _outcome_anomaly(outcome: ChunkOutcome) -> Optional[str]:
    """Internal-consistency check on a successful chunk result.

    Returns a human-readable reason when the result cannot be trusted
    (a worker bug, a torn queue write that still unpickled, or an
    injected ``corrupt-outcome`` fault), else ``None``.
    """
    result = outcome.result
    if result is None:
        return None  # error outcomes are handled by the requeue path
    completed = result.completed_trajectories
    if completed < 0 or completed > outcome.num_trajectories:
        return (
            f"completed trajectories {completed} outside "
            f"[0, {outcome.num_trajectories}]"
        )
    if not result.timed_out and completed != outcome.num_trajectories:
        return (
            f"short chunk ({completed}/{outcome.num_trajectories}) "
            f"without a timeout flag"
        )
    for name, estimate in result.estimates.items():
        if estimate.count > completed:
            return f"estimate {name!r} counts {estimate.count} > {completed} trajectories"
    return None


class _WorkerHandle:
    """Book-keeping for one worker process and its private queues.

    Each worker owns BOTH its task queue and its result queue.  A shared
    result queue would be a liability: killing a worker mid-``put`` leaves
    the queue's write lock held by a dead process, wedging every other
    worker forever.  With per-worker queues a kill can only corrupt the
    victim's own channel, which is discarded along with the handle.
    """

    __slots__ = (
        "worker_id", "process", "task_queue", "result_queue", "busy",
        "dispatched_at", "dead", "respawn_due",
    )

    def __init__(self, worker_id: int, ctx) -> None:
        self.worker_id = worker_id
        self.task_queue = ctx.Queue()
        self.result_queue = ctx.Queue()
        self.process = ctx.Process(
            target=worker_main,
            args=(worker_id, self.task_queue, self.result_queue),
            daemon=True,
            name=f"repro-worker-{worker_id}",
        )
        self.busy: Optional[ChunkTask] = None
        self.dispatched_at = 0.0
        #: Set when the death has been processed; the slot respawns only
        #: once ``respawn_due`` passes (exponential backoff).
        self.dead = False
        self.respawn_due = 0.0
        self.process.start()


class _Job:
    """Internal mutable state of one submitted job."""

    def __init__(self, spec: JobSpec, key: str) -> None:
        self.spec = spec
        self.key = key
        self.state = JobState.QUEUED
        #: Resolved execution method ("stochastic" | "exact") — for
        #: ``method="auto"`` specs this records what the cost model chose,
        #: and an exact run that trips its node ceiling flips it back.
        self.method = "stochastic"
        self.chunks: Dict[int, ChunkTask] = {}
        self.pending: Deque[int] = deque()
        self.in_flight: Set[int] = set()
        self.completed: Dict[int, StochasticResult] = {}
        self.retries: Dict[int, int] = {}
        #: Chunk index -> count of attempts that KILLED the worker (poison
        #: detection counts fatalities, not mere errors).
        self.worker_deaths: Dict[int, int] = {}
        #: Chunk index -> observed failure reasons, for diagnoses.
        self.failure_reasons: Dict[int, List[str]] = {}
        #: Chunk index -> monotonic instant a queue-delay fault holds it to.
        self.delayed: Dict[int, float] = {}
        self.base_spans: List[Span] = []  #: spans restored from a checkpoint
        self.base_partial: Optional[StochasticResult] = None
        #: Lease book-keeping (docs/ROBUSTNESS.md, "Durability & restart
        #: semantics"): fencing tokens are monotonic per job; the *current*
        #: token per chunk is the only one whose commit is accepted.
        self.next_token = 0
        self.lease_tokens: Dict[int, int] = {}
        self.lease_deadlines: Dict[int, float] = {}
        #: Chunks whose lease renewal is suppressed (lease-expiry fault).
        self.no_renew: Set[int] = set()
        self.aggregate = StochasticResult(
            circuit_name=spec.circuit.name,
            backend_kind=spec.backend_kind,
            requested_trajectories=spec.trajectories,
        )
        for prop in spec.properties:
            self.aggregate.estimates[prop.name] = PropertyEstimate(prop.name)
        self.final: Optional[StochasticResult] = None
        self.error: Optional[str] = None
        #: Failure classification for typed errors from :meth:`result`:
        #: None | "retries" | "poison" | "breaker".
        self.error_kind: Optional[str] = None
        self.poison_diagnosis: Optional[Dict[str, object]] = None
        self.cached = False
        #: Cost-model verdict for ``method="auto"`` submissions (None for
        #: explicit methods, cache hits, and checkpoint resumes) — kept so
        #: serve logs and ``repro jobs`` can cite the dispatch evidence.
        self.decision: Optional[DispatchDecision] = None
        #: Circuit-family fingerprint for run-ledger records.
        self.fingerprint = circuit_fingerprint(
            spec.circuit, spec.noise_model, spec.backend_kind
        )
        self.started_at = time.perf_counter()
        #: Root trace context — deterministic (derived from the job key), so
        #: reruns of the same spec stitch into structurally identical trees.
        self.trace_root = job_trace_context(key)
        #: Monotonic birth instant for the root trace span (worker-side
        #: chunk spans are stamped on the same system-wide clock).
        self.started_monotonic = time.monotonic()
        #: Absolute monotonic instant the whole job must respect — shipped
        #: to every chunk so N workers share ONE wall-clock budget instead
        #: of each chunk getting the full relative timeout.
        self.deadline = (
            None if spec.timeout is None else time.monotonic() + spec.timeout
        )
        #: When the deadline was first observed tripped (drain-grace anchor).
        self.timeout_at: Optional[float] = None
        self.done = threading.Event()
        self.chunks_since_checkpoint = 0

    @property
    def total_retries(self) -> int:
        return sum(self.retries.values())

    def finished(self) -> bool:
        return self.done.is_set()


class Scheduler:
    """Persistent-pool scheduler for stochastic simulation jobs.

    Parameters
    ----------
    workers:
        Number of long-lived worker processes.
    store:
        Result cache / checkpoint store; defaults to a memory-only store.
    chunk_size:
        Trajectories per chunk; default aims at ~8 chunks per worker
        (bounded below by 1) so streaming estimates refresh frequently and
        a lost chunk is cheap to retry.
    max_retries:
        Requeue budget per chunk before the whole job is failed.
    checkpoint_every:
        Checkpoint the merged partial to the store after this many chunk
        completions (1 = after every chunk).
    chunk_timeout:
        Wall-clock seconds an in-flight chunk may take before its worker
        is presumed wedged, killed, and the chunk retried (None = never).
    poison_retries:
        Worker-fatal attempts a single chunk may accumulate before it is
        quarantined and the job failed with
        :class:`~repro.errors.PoisonChunkError` (default: ``max_retries``).
    respawn_backoff / respawn_backoff_cap:
        Base and cap (seconds) of the exponential delay before a dead
        worker's slot is refilled; the exponent is the number of worker
        deaths inside the breaker window.
    breaker_threshold / breaker_window:
        Open the pool circuit breaker — failing all pending jobs with
        :class:`~repro.errors.WorkerPoolBrokenError` — when this many
        worker deaths land within the window (seconds).
    exact_node_ceiling:
        Rho-DD node budget for exact-dispatched jobs; exceeding it
        mid-flight falls the job back to stochastic sampling.  ``None``
        defers to the ``REPRO_EXACT_NODE_CEILING`` environment variable
        (unset means "no ceiling": exact runs to completion).
    journal:
        Optional write-ahead :class:`~repro.service.journal.JobJournal`.
        When present, every submission, chunk plan, lease grant, committed
        chunk result, and job completion is journaled durably, making the
        scheduler's work resumable after a hard death (``serve --resume``).
    ledger:
        Optional :class:`~repro.obs.ledger.RunLedger`.  When present, every
        finished job appends a run-profile record (method, peak DD nodes,
        cpu/wall seconds, throughput, ``p_clean``, half-widths) keyed by
        its circuit-family fingerprint, node-ceiling fallbacks are recorded
        as censored observations, and ``method="auto"`` dispatch consults
        the accumulated family history through the measured cost model
        (``dispatch.measured`` / ``dispatch.worst_case`` count which basis
        each decision used).
    lease_duration:
        Seconds a dispatched chunk's ownership lease lasts before the
        reaper reclaims it (the dispatcher heartbeats leases on behalf of
        its live workers, so only genuinely lost holders expire).  Commits
        carrying a stale fencing token are rejected — re-executions are
        at-most-once-committed.
    """

    def __init__(
        self,
        workers: int = 2,
        store: Optional[ResultStore] = None,
        chunk_size: Optional[int] = None,
        max_retries: int = 2,
        checkpoint_every: int = 1,
        chunk_timeout: Optional[float] = None,
        mp_context: str = "fork",
        poll_interval: float = 0.02,
        poison_retries: Optional[int] = None,
        respawn_backoff: float = 0.05,
        respawn_backoff_cap: float = 2.0,
        breaker_threshold: int = 12,
        breaker_window: float = 10.0,
        exact_node_ceiling: Optional[int] = None,
        journal: Optional[JobJournal] = None,
        ledger: Optional[RunLedger] = None,
        lease_duration: float = 30.0,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        self.workers = workers
        self.store = store if store is not None else ResultStore(directory=None)
        self.chunk_size = chunk_size
        self.max_retries = max_retries
        self.checkpoint_every = max(1, checkpoint_every)
        self.chunk_timeout = chunk_timeout
        self.poll_interval = poll_interval
        self.poison_retries = max_retries if poison_retries is None else poison_retries
        self.respawn_backoff = respawn_backoff
        self.respawn_backoff_cap = respawn_backoff_cap
        self.breaker_threshold = breaker_threshold
        self.breaker_window = breaker_window
        self.exact_node_ceiling = (
            exact_node_ceiling
            if exact_node_ceiling is not None
            else default_node_ceiling()
        )
        self.journal = journal
        self.ledger = ledger
        self.lease_duration = lease_duration
        #: Lease owner identity for this scheduler instance — stable for
        #: its lifetime, distinct across restarts (the PID changes).
        self.owner_id = f"{socket.gethostname()}:{os.getpid()}"
        #: Set by :meth:`drain`: stop assigning new chunks, let in-flight
        #: ones land, checkpoint the rest.
        self._draining = False
        #: Trajectories actually executed by this scheduler instance —
        #: cache hits and resumed checkpoints contribute nothing here.
        self.trajectories_executed = 0
        #: Scheduler-side observability (see docs/OBSERVABILITY.md).  The
        #: counters are pre-registered so snapshots always carry them, even
        #: when zero — "no retries" is itself a useful report.
        self.metrics = MetricsRegistry()
        for name in (
            "scheduler.retries",
            "scheduler.worker_respawns",
            "scheduler.chunks_completed",
            "scheduler.checkpoint_writes",
            "scheduler.trajectories_executed",
            "scheduler.drain.errors",
            "scheduler.outcomes.rejected",
            "scheduler.poison_quarantined",
            "scheduler.breaker.trips",
            "faults.recovered.requeue",
            "faults.recovered.respawn",
            "faults.recovered.outcome_rejected",
            "store.hits",
            "store.misses",
            # Hybrid-dispatch routing: one of exact/stochastic per fresh
            # (uncached, unresumed) submission, plus fallback for exact
            # runs that tripped the node ceiling and re-ran stochastic.
            "dispatch.exact",
            "dispatch.stochastic",
            "dispatch.fallback",
            # Evidence basis of auto decisions: measured = run-ledger
            # family history entered the comparison; worst_case = dense
            # 4^n/2^n bounds (empty/thin history or REPRO_MEASURED_COST=off).
            "dispatch.measured",
            "dispatch.worst_case",
            # Durable-execution layer: chunk-ownership leases and drain.
            "lease.granted",
            "lease.renewed",
            "lease.expired",
            "lease.fenced",
            "scheduler.jobs_resumed",
            "scheduler.drain.completed",
            "scheduler.drain.forced",
        ):
            self.metrics.counter(name)
        self.tracer = Tracer(max_events=2048)
        #: Active fault injector (``REPRO_FAULT_PLAN``; None in production).
        #: Scheduler-side sites: queue-drop / queue-delay at dispatch time.
        self._injector = get_injector()
        #: Monotonic stamps of recent worker deaths (breaker/backoff input).
        self._death_stamps: Deque[float] = deque()

        self._ctx = multiprocessing.get_context(mp_context)
        self._lock = threading.RLock()
        self._jobs: Dict[str, _Job] = {}
        self._order: List[str] = []  #: submission order, for FIFO dispatch
        self._closed = False
        self._workers: List[_WorkerHandle] = [
            _WorkerHandle(i, self._ctx) for i in range(workers)
        ]
        self._next_worker_id = workers
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, daemon=True, name="repro-scheduler"
        )
        self._dispatcher.start()
        atexit.register(self.shutdown)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def submit(self, spec: JobSpec) -> str:
        """Register a job; returns its content-addressed key immediately.

        Cache hit → the job is born COMPLETED with the stored result.
        Checkpoint hit → only the missing trajectory spans are scheduled.
        Identical key already live → idempotent, the existing job is kept.
        Exact-dispatched jobs (``method="exact"``, or ``"auto"`` when the
        cost model favours exact) run *synchronously* in this thread —
        there are no chunks to shard — so for them ``submit`` returns
        only once the job has completed or fallen back to stochastic.
        """
        key = spec.job_key()
        run_exact = False
        with self._lock:
            if self._closed:
                raise SchedulerError("scheduler is shut down")
            existing = self._jobs.get(key)
            if existing is not None and not existing.finished():
                return key  # identical job already in flight — join it

            job = _Job(spec, key)
            cached = self.store.get(key)
            if cached is not None:
                self.metrics.counter("store.hits").inc()
                self.tracer.event("job.cache_hit", job=key[:16])
                job.final = cached
                job.cached = True
                job.method = cached.method
                job.state = JobState.COMPLETED
                job.done.set()
            else:
                self.metrics.counter("store.misses").inc()
                checkpoint = self.store.get_partial(key)
                if checkpoint is not None:
                    # A checkpoint only ever comes from a stochastic run;
                    # resume it rather than re-deciding the method.
                    spans, partial = checkpoint
                    job.base_spans = spans
                    job.base_partial = partial
                    job.aggregate.merge(partial)
                    self.tracer.event(
                        "job.resume", job=key[:16],
                        restored=partial.completed_trajectories,
                    )
                    self._journal_submit(job)
                    self._plan_chunks(job)
                    if not job.chunks:
                        # The checkpoint already covers every trajectory.
                        self._finalize(job)
                else:
                    job.method = self._resolve_method(spec, job)
                    self._journal_submit(job)
                    if job.method == "exact":
                        # No chunks, no deadline sharing: the exact run
                        # happens after the lock drops, in this thread.
                        job.state = JobState.RUNNING
                        job.deadline = None
                        run_exact = True
                    else:
                        self.metrics.counter("dispatch.stochastic").inc()
                        self._plan_chunks(job)
            self._jobs[key] = job
            self._order.append(key)
        if run_exact:
            self._run_exact(job)
        return key

    def submit_resumed(
        self,
        spec: JobSpec,
        plan: List[ChunkPlanEntry],
        completed: Dict[int, StochasticResult],
        base_spans: Optional[List[Span]] = None,
        base_partial: Optional[StochasticResult] = None,
        token_base: int = 0,
    ) -> str:
        """Re-enqueue an interrupted job from its journaled state.

        Unlike the checkpoint path in :meth:`submit` — which lays a *new*
        chunk plan over the checkpoint's merged spans — this restores the
        job's **original** chunk plan and the individual chunk results
        that already committed.  The final :meth:`_ordered_merge` then
        folds exactly the same sequence of chunk results in exactly the
        same order an uninterrupted run would have, so the resumed result
        is bit-identical no matter which chunk subset survived the crash.

        ``token_base`` must exceed every fencing token the previous
        incarnation granted (the journal tracks the horizon), so a zombie
        commit from a pre-crash worker can never be mistaken for current.
        """
        key = spec.job_key()
        with self._lock:
            if self._closed:
                raise SchedulerError("scheduler is shut down")
            existing = self._jobs.get(key)
            if existing is not None and not existing.finished():
                return key
            job = _Job(spec, key)
            cached = self.store.get(key)
            if cached is not None:
                # The final result landed before the crash (the journal's
                # job-done record was the casualty, not the data).
                self.metrics.counter("store.hits").inc()
                self.tracer.event("job.cache_hit", job=key[:16])
                job.final = cached
                job.cached = True
                job.method = cached.method
                job.state = JobState.COMPLETED
                self._journal_job_done(job, "completed")
                job.done.set()
            else:
                job.method = "stochastic"
                job.next_token = max(0, token_base)
                job.base_spans = list(base_spans or [])
                job.base_partial = base_partial
                if base_partial is not None:
                    job.aggregate.merge(base_partial)
                for index, first, count in plan:
                    job.chunks[index] = ChunkTask(
                        job_key=key,
                        chunk_index=index,
                        circuit=spec.circuit,
                        noise_model=spec.noise_model,
                        properties=spec.properties,
                        backend_kind=spec.backend_kind,
                        first_trajectory=first,
                        num_trajectories=count,
                        master_seed=spec.seed,
                        sample_shots=spec.sample_shots,
                        deadline=job.deadline,
                    )
                restored = 0
                for index in sorted(completed):
                    if index not in job.chunks:
                        continue
                    result = completed[index]
                    job.completed[index] = result
                    job.aggregate.merge(result)
                    restored += result.completed_trajectories
                job.pending.extend(
                    index for index in sorted(job.chunks)
                    if index not in job.completed
                )
                self.metrics.counter("scheduler.jobs_resumed").inc()
                self.tracer.event(
                    "job.resume_journal", job=key[:16],
                    restored=restored, missing=len(job.pending),
                )
                if self.journal is not None and self.journal.job(key) is None:
                    # Resuming against a journal with no memory of this job
                    # (e.g. replayed from a dict): re-anchor the records so
                    # the resumed run is itself durable.
                    self._journal_submit(job)
                    self._journal_plan(job)
                if job.pending:
                    job.state = JobState.RUNNING
                else:
                    self._finalize(job)
            self._jobs[key] = job
            self._order.append(key)
        return key

    def drain(self, timeout: float = 10.0) -> bool:
        """Graceful drain: stop assigning chunks, land what's in flight.

        Within ``timeout`` seconds the dispatcher keeps consuming worker
        outcomes (each one journaled and merged as usual) but assigns
        nothing new.  Whatever is still unfinished afterwards is force-
        checkpointed and left journal-incomplete — exactly the state
        ``serve --resume`` restarts from.  Returns True when every
        in-flight chunk landed inside the deadline.
        """
        with self._lock:
            self._draining = True
        deadline = time.monotonic() + max(0.0, timeout)
        while time.monotonic() < deadline:
            with self._lock:
                busy = any(
                    h.busy is not None and not h.dead for h in self._workers
                )
            if not busy:
                break
            time.sleep(min(0.05, self.poll_interval))
        with self._lock:
            clean = all(h.busy is None or h.dead for h in self._workers)
            for job in self._jobs.values():
                if not job.finished():
                    self._checkpoint(job, force=True)
            if self.journal is not None:
                self.journal.flush()
            self.metrics.counter(
                "scheduler.drain.completed" if clean else "scheduler.drain.forced"
            ).inc()
            self.tracer.event("scheduler.drain", clean=clean)
        return clean

    def status(self, key: str) -> JobStatus:
        """Point-in-time progress snapshot (streaming estimates included)."""
        with self._lock:
            job = self._jobs.get(key)
            if job is None:
                raise KeyError(f"unknown job {key!r}")
            source = job.final if job.final is not None else job.aggregate
            estimates = {
                name: StreamingEstimate(
                    name=name,
                    mean=estimate.mean,
                    halfwidth=estimate.hoeffding_halfwidth(),
                    count=estimate.count,
                )
                for name, estimate in source.estimates.items()
                if estimate.count > 0
            }
            elapsed = (
                source.elapsed_seconds
                if job.final is not None
                else time.perf_counter() - job.started_at
            )
            return JobStatus(
                key=key,
                state=job.state,
                circuit_name=job.spec.circuit.name,
                requested_trajectories=job.spec.trajectories,
                completed_trajectories=source.completed_trajectories,
                estimates=estimates,
                elapsed_seconds=elapsed,
                retries=job.total_retries,
                cached=job.cached,
                method=job.method,
                error=job.error,
                metrics=merge_snapshots(source.metrics),
            )

    def result(self, key: str, timeout: Optional[float] = None) -> StochasticResult:
        """Block until the job finishes; returns an independent result copy.

        Failures raise out of the shared taxonomy (:mod:`repro.errors`):
        :class:`PoisonChunkError` for a quarantined chunk (with a
        structured ``diagnosis``), :class:`WorkerPoolBrokenError` when the
        respawn circuit breaker opened, :class:`JobFailedError` for an
        exhausted retry budget, :class:`JobCancelledError` on cancellation.
        """
        with self._lock:
            job = self._jobs.get(key)
        if job is None:
            raise KeyError(f"unknown job {key!r}")
        if not job.done.wait(timeout):
            raise TimeoutError(f"job {key[:16]}… still running after {timeout} s")
        if job.state == JobState.FAILED:
            message = job.error or "job failed"
            if job.error_kind == "poison":
                raise PoisonChunkError(message, diagnosis=job.poison_diagnosis)
            if job.error_kind == "breaker":
                raise WorkerPoolBrokenError(message)
            raise JobFailedError(message)
        if job.state == JobState.CANCELLED:
            raise JobCancelledError(f"job {key[:16]}… was cancelled")
        assert job.final is not None
        return job.final.copy()

    def run(self, spec: JobSpec, timeout: Optional[float] = None) -> StochasticResult:
        """Submit and wait — the synchronous convenience path."""
        return self.result(self.submit(spec), timeout=timeout)

    def metrics_snapshot(self) -> Dict[str, Dict[str, object]]:
        """Point-in-time snapshot of scheduler-side metrics.

        Covers retries, respawns, chunk completions, checkpoint writes,
        store traffic *and* the store's own corruption/write-failure
        counters, plus any ``faults.injected.*`` counters from an active
        fault injector.  Callers attributing activity to one job should
        snapshot before and after and take
        :func:`repro.obs.delta_snapshots` (the pool is shared).
        """
        with self._lock:
            parts = [self.metrics.snapshot(), self.store.metrics.snapshot()]
            if self.journal is not None:
                parts.append(self.journal.metrics.snapshot())
            if self.ledger is not None:
                parts.append(self.ledger.metrics_snapshot())
            if self._injector is not None:
                parts.append(self._injector.snapshot())
            return merge_snapshots(*parts)

    def trace_events(self) -> List[Dict[str, object]]:
        """Buffered scheduler trace events as JSON-able dictionaries."""
        with self._lock:
            return self.tracer.export()

    def cancel(self, key: str) -> bool:
        """Cancel a job; its checkpoint (if any) survives for later resume."""
        with self._lock:
            job = self._jobs.get(key)
            if job is None:
                raise KeyError(f"unknown job {key!r}")
            if job.finished():
                return False
            job.pending.clear()
            job.delayed.clear()
            job.state = JobState.CANCELLED
            self._checkpoint(job, force=True)
            self._journal_job_done(job, "cancelled")
            job.done.set()
            return True

    def shutdown(self) -> None:
        """Stop the dispatcher and terminate the worker pool (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for job in self._jobs.values():
                if not job.finished():
                    job.state = JobState.CANCELLED
                    self._checkpoint(job, force=True)
                    job.done.set()
        if self._dispatcher.is_alive():
            self._dispatcher.join(timeout=2.0)
        for handle in self._workers:
            try:
                handle.task_queue.put(None)
            except (OSError, ValueError):
                pass
        deadline = time.time() + 1.0
        for handle in self._workers:
            handle.process.join(timeout=max(0.0, deadline - time.time()))
            if handle.process.is_alive():
                handle.process.terminate()

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Hybrid dispatch (see repro.exact.cost and docs/EXACT.md)
    # ------------------------------------------------------------------

    def _resolve_method(self, spec: JobSpec, job: Optional[_Job] = None) -> str:
        """Decide how a fresh (uncached, unresumed) job actually runs.

        ``"stochastic"`` passes through; ``"exact"`` is honoured or
        rejected (a spec the exact backend cannot express fails the
        submission with :class:`SchedulerError` rather than silently
        sampling); ``"auto"`` asks the cost model — scored against
        run-ledger family history when a ledger is attached — falling back
        to stochastic for unsupported specs.
        """
        if spec.method == "stochastic":
            return "stochastic"
        reason = exact_unsupported_reason(spec.circuit, spec.properties)
        if spec.method == "exact":
            if reason is not None:
                raise SchedulerError(
                    f"job requests method='exact' but exact simulation is "
                    f"unsupported: {reason}"
                )
            return "exact"
        if reason is not None:
            self.tracer.event("dispatch.auto", choice="stochastic", reason=reason)
            return "stochastic"
        history = self.ledger.aggregates() if self.ledger is not None else None
        decision = estimate_costs(
            spec.circuit,
            spec.noise_model,
            spec.properties,
            spec.trajectories,
            backend_kind=spec.backend_kind,
            history=history,
        )
        if job is not None:
            job.decision = decision
        self.metrics.counter(f"dispatch.{decision.evidence}").inc()
        self.tracer.event(
            "dispatch.auto",
            choice=decision.method,
            exact_cost=decision.exact_cost,
            stochastic_cost=decision.stochastic_cost,
            evidence=decision.evidence,
            fingerprint=decision.fingerprint,
        )
        return decision.method

    def decision_for(self, key: str) -> Optional[DispatchDecision]:
        """The auto-dispatch verdict recorded for ``key``, if any."""
        with self._lock:
            job = self._jobs.get(key)
            return None if job is None else job.decision

    def _run_exact(self, job: _Job) -> None:
        """Run one exact-dispatched job to completion in the calling thread.

        A :class:`~repro.errors.ResourceLimitError` (rho DD outgrew the
        node ceiling) *falls back*: the job is re-planned onto the
        stochastic chunk path with its original spec, so the eventual
        result is bit-identical to a never-dispatched-exact run.  Any
        other failure fails the job.
        """
        spec = job.spec
        self.tracer.event("job.exact_start", job=job.key[:16])
        try:
            result = ExactSimulator(node_ceiling=self.exact_node_ceiling).run(
                spec.circuit,
                noise_model=spec.noise_model,
                properties=spec.properties,
            )
        except ResourceLimitError as limit:
            with self._lock:
                if job.finished():
                    return  # cancelled/shut down while the exact run ran
                self.metrics.counter("dispatch.fallback").inc()
                self.tracer.event(
                    "job.exact_fallback", job=job.key[:16],
                    nodes=limit.nodes, ceiling=limit.ceiling,
                )
                # Feed the misprediction back: the family's rho provably
                # grew past the ceiling, so the measured model's next
                # exact-size estimate rises (censored observation).
                self._ledger_record_fallback(job, limit.nodes, limit.ceiling)
                job.method = "stochastic"
                job.deadline = (
                    None
                    if spec.timeout is None
                    else time.monotonic() + spec.timeout
                )
                self._plan_chunks(job)
            return
        except Exception as error:
            with self._lock:
                if job.finished():
                    return
                job.state = JobState.FAILED
                job.error = (
                    f"exact simulation failed: {type(error).__name__}: {error}"
                )
                self._journal_job_done(job, "failed", job.error)
                job.done.set()
            return
        with self._lock:
            if job.finished():
                return
            self.metrics.counter("dispatch.exact").inc()
            result.elapsed_seconds = time.perf_counter() - job.started_at
            job.final = result
            job.state = JobState.COMPLETED
            self.tracer.event(
                "job.finalize", job=job.key[:16], method="exact",
                peak_nodes=result.peak_nodes,
            )
            self.store.put(job.key, result, spec_dict=spec.to_dict())
            self._ledger_record_run(job, result)
            self._journal_job_done(job, "completed")
            job.done.set()

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def _default_chunk_size(self, trajectories: int) -> int:
        return max(1, -(-trajectories // (self.workers * 8)))

    def _plan_chunks(self, job: _Job) -> None:
        # Chunk indices partition the job's trajectory index space.  Under
        # stratified sampling (repro.stochastic.strata, default on the DD
        # backend) each index budgets one *erring-conditioned* trajectory —
        # the worker's rejection search depends only on the absolute index,
        # so any chunking reproduces the same samples, exactly as with
        # naive index-derived seeds.  Job keys are unaffected either way.
        size = self.chunk_size or self._default_chunk_size(job.spec.trajectories)
        remaining = _remaining_spans(job.spec.trajectories, job.base_spans)
        index = 0
        for first, count in remaining:
            offset = 0
            while offset < count:
                take = min(size, count - offset)
                job.chunks[index] = ChunkTask(
                    job_key=job.key,
                    chunk_index=index,
                    circuit=job.spec.circuit,
                    noise_model=job.spec.noise_model,
                    properties=job.spec.properties,
                    backend_kind=job.spec.backend_kind,
                    first_trajectory=first + offset,
                    num_trajectories=take,
                    master_seed=job.spec.seed,
                    sample_shots=job.spec.sample_shots,
                    deadline=job.deadline,
                )
                job.pending.append(index)
                index += 1
                offset += take
        if job.chunks:
            job.state = JobState.RUNNING
            self._journal_plan(job)

    # ------------------------------------------------------------------
    # Journal hooks (no-ops without a journal)
    # ------------------------------------------------------------------

    def _journal_submit(self, job: _Job) -> None:
        if self.journal is not None:
            self.journal.job_submitted(job.key, job.spec.to_dict())

    def _journal_plan(self, job: _Job) -> None:
        if self.journal is not None:
            self.journal.plan_recorded(
                job.key,
                [
                    (index, task.first_trajectory, task.num_trajectories)
                    for index, task in sorted(job.chunks.items())
                ],
                list(job.base_spans),
                None if job.base_partial is None else job.base_partial.to_dict(),
            )

    def _journal_job_done(
        self, job: _Job, status: str, error: Optional[str] = None
    ) -> None:
        if self.journal is not None:
            self.journal.job_done(job.key, status, error)

    # ------------------------------------------------------------------
    # Run-ledger hooks (no-ops without a ledger; never fail the job)
    # ------------------------------------------------------------------

    def _ledger_record_run(self, job: _Job, result: StochasticResult) -> None:
        if self.ledger is None:
            return
        try:
            p_clean = result.strata.get("p_clean") if result.strata else None
            rate = result.trajectories_per_second()
            if rate == float("inf"):
                rate = 0.0
            halfwidths = {
                name: estimate.hoeffding_halfwidth()
                for name, estimate in result.estimates.items()
                if estimate.count > 0
            }
            self.ledger.record_run(
                key=job.key,
                fingerprint=job.fingerprint,
                method=result.method,
                qubits=job.spec.circuit.num_qubits,
                depth=job.spec.circuit.depth(),
                peak_nodes=result.peak_nodes,
                cpu_seconds=result.cpu_seconds,
                elapsed_seconds=result.elapsed_seconds,
                trajectories=result.completed_trajectories,
                effective_trajectories=result.effective_trajectories(),
                trajectories_per_second=rate,
                p_clean=p_clean,
                halfwidths=halfwidths,
            )
        except Exception:
            # Telemetry must never take a finished job down with it.
            self.metrics.counter("ledger.write.errors").inc()

    def _ledger_record_fallback(self, job: _Job, nodes: int, ceiling: int) -> None:
        if self.ledger is None:
            return
        try:
            self.ledger.record_fallback(job.key, job.fingerprint, nodes, ceiling)
        except Exception:
            self.metrics.counter("ledger.write.errors").inc()

    # ------------------------------------------------------------------
    # Dispatch loop (background thread)
    # ------------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while not self._closed:
            with self._lock:
                self._reap_dead_workers()
                self._release_delayed_chunks()
                self._service_leases()
                self._check_deadlines()
                self._assign_chunks()
                drained = sum(
                    self._drain_results(handle) for handle in list(self._workers)
                )
            if not drained:
                time.sleep(self.poll_interval)

    def _drain_results(self, handle: _WorkerHandle) -> int:
        """Consume every outcome currently readable from one worker."""
        count = 0
        while True:
            try:
                outcome = handle.result_queue.get_nowait()
            except Empty:
                return count
            except Exception as exc:
                # A write torn by a mid-put kill, or a queue whose feeder
                # died: visible in metrics/traces, never silently dropped.
                self.metrics.counter("scheduler.drain.errors").inc()
                self.tracer.event(
                    "drain.error",
                    worker=handle.worker_id,
                    error=f"{type(exc).__name__}: {exc}",
                )
                return count
            if isinstance(outcome, ChunkOutcome):
                self._handle_outcome(outcome)
                count += 1

    def _idle_workers(self) -> List[_WorkerHandle]:
        return [
            h for h in self._workers
            if h.busy is None and not h.dead and h.process.is_alive()
        ]

    def _release_delayed_chunks(self) -> None:
        """Return chunks held by a queue-delay fault once their hold expires."""
        now = time.perf_counter()
        for job in self._jobs.values():
            if job.finished() or not job.delayed:
                continue
            for index, due in list(job.delayed.items()):
                if now >= due:
                    del job.delayed[index]
                    job.pending.append(index)

    def _assign_chunks(self) -> None:
        depth = sum(
            len(job.pending) for job in self._jobs.values() if not job.finished()
        )
        self.metrics.gauge("scheduler.queue_depth").max(depth)
        if self._draining:
            return  # drain: land in-flight work, assign nothing new
        idle = self._idle_workers()
        if not idle:
            return
        for key in self._order:
            job = self._jobs.get(key)
            if job is None or job.finished() or not job.pending:
                continue
            while idle and job.pending:
                index = job.pending.popleft()
                task = job.chunks[index]
                if self._injector is not None:
                    if self._injector.fire(
                        "queue-drop", job_key=task.job_key, chunk_index=index
                    ):
                        self.tracer.event(
                            "chunk.queue_drop", job=key[:16], chunk=index
                        )
                        self._requeue(task, "fault: queue delivery dropped")
                        continue
                    delay = self._injector.fire(
                        "queue-delay", job_key=task.job_key, chunk_index=index
                    )
                    if delay is not None:
                        hold = delay.seconds or 0.1
                        job.delayed[index] = time.perf_counter() + hold
                        self.tracer.event(
                            "chunk.queue_delay", job=key[:16],
                            chunk=index, seconds=hold,
                        )
                        continue
                handle = idle.pop()
                job.in_flight.add(index)
                # Grant the chunk's ownership lease: a fresh monotonic
                # fencing token (also stamped on the task, echoed in the
                # outcome) and a deadline the dispatcher keeps renewing
                # while the worker stays alive.
                token = job.next_token
                job.next_token += 1
                lease_deadline = time.monotonic() + self.lease_duration
                job.lease_tokens[index] = token
                job.lease_deadlines[index] = lease_deadline
                self.metrics.counter("lease.granted").inc()
                if self.journal is not None:
                    self.journal.lease_granted(
                        job.key, index, self.owner_id, token, lease_deadline
                    )
                # Stamp the span context at dispatch time (not planning
                # time) so each retry gets a distinct, deterministic span —
                # the attempt number is the disambiguator.
                task = replace(
                    task,
                    trace=job.trace_root.child(
                        "chunk", index, job.retries.get(index, 0)
                    ),
                    fencing_token=token,
                )
                handle.busy = task
                handle.dispatched_at = time.perf_counter()
                handle.task_queue.put(task)
            if not idle:
                return

    # ------------------------------------------------------------------
    # Worker lifecycle: reaping, backoff, circuit breaker
    # ------------------------------------------------------------------

    def _reap_dead_workers(self) -> None:
        now = time.perf_counter()
        for position, handle in enumerate(self._workers):
            if handle.dead:
                if now >= handle.respawn_due:
                    self._respawn(position, handle)
                continue
            alive = handle.process.is_alive()
            stuck = (
                self.chunk_timeout is not None
                and handle.busy is not None
                and now - handle.dispatched_at > self.chunk_timeout
            )
            if alive and not stuck:
                continue
            if alive:
                handle.process.terminate()
                handle.process.join(timeout=1.0)
            # Salvage outcomes that were fully written before the death so a
            # finished chunk is not needlessly re-executed.
            self._drain_results(handle)
            if handle.busy is not None:
                self._requeue(
                    handle.busy,
                    "chunk timed out" if stuck else "worker died",
                    worker_death=True,
                )
                handle.busy = None
            handle.dead = True
            delay = self._record_worker_death()
            handle.respawn_due = now + delay
            self.tracer.event(
                "worker.backoff", worker=handle.worker_id,
                delay_seconds=round(delay, 3),
            )

    def _respawn(self, position: int, handle: _WorkerHandle) -> None:
        replacement = _WorkerHandle(self._next_worker_id, self._ctx)
        self._next_worker_id += 1
        self._workers[position] = replacement
        self.metrics.counter("scheduler.worker_respawns").inc()
        self.metrics.counter("faults.recovered.respawn").inc()
        self.tracer.event(
            "worker.respawn",
            died=handle.worker_id,
            spawned=replacement.worker_id,
        )

    def _record_worker_death(self) -> float:
        """Track a death for breaker/backoff; returns the respawn delay."""
        now = time.perf_counter()
        self._death_stamps.append(now)
        horizon = now - self.breaker_window
        while self._death_stamps and self._death_stamps[0] < horizon:
            self._death_stamps.popleft()
        recent = len(self._death_stamps)
        if recent >= self.breaker_threshold:
            self._trip_breaker(recent)
            self._death_stamps.clear()
        if recent <= 1:
            # An isolated death respawns immediately; backoff is storm
            # protection, not a tax on every crash.
            return 0.0
        return min(
            self.respawn_backoff_cap,
            self.respawn_backoff * (2 ** min(recent - 2, 6)),
        )

    def _trip_breaker(self, recent: int) -> None:
        """Respawn storm: fail everything pending with one clear error."""
        message = (
            f"worker pool circuit breaker open: {recent} worker deaths "
            f"within {self.breaker_window:.1f} s — failing pending jobs "
            f"(the pool keeps respawning with backoff; resubmit once the "
            f"environment is healthy)"
        )
        self.metrics.counter("scheduler.breaker.trips").inc()
        self.tracer.event("breaker.open", deaths=recent, window=self.breaker_window)
        for job in self._jobs.values():
            if job.finished():
                continue
            job.state = JobState.FAILED
            job.error = message
            job.error_kind = "breaker"
            job.pending.clear()
            job.delayed.clear()
            self._checkpoint(job, force=True)
            self._journal_job_done(job, "failed", job.error)
            job.done.set()

    # ------------------------------------------------------------------
    # Lease heartbeat and reaper
    # ------------------------------------------------------------------

    def _service_leases(self) -> None:
        """Heartbeat live leases; reclaim expired ones.

        The dispatcher renews on behalf of its live workers (a worker has
        no clock of its own to heartbeat with), so a lease only expires
        when the holder — worker *or* the whole scheduler process — has
        genuinely stopped making progress.  An expired lease invalidates
        its fencing token and requeues the chunk: the original holder, if
        it ever reports, is fenced at commit time.
        """
        now = time.monotonic()
        for handle in self._workers:
            task = handle.busy
            if task is None or handle.dead or not handle.process.is_alive():
                continue
            job = self._jobs.get(task.job_key)
            if job is None or job.finished():
                continue
            index = task.chunk_index
            if job.lease_tokens.get(index) != task.fencing_token:
                continue  # ownership moved on; this holder is a zombie
            if index in job.no_renew:
                continue
            if self._injector is not None and self._injector.fire(
                "lease-expiry", job_key=job.key, chunk_index=index
            ):
                # Simulate a lost heartbeat: stop renewing so the reaper
                # below reclaims the lease while the worker still runs.
                job.no_renew.add(index)
                self.tracer.event(
                    "lease.renewal_blocked", job=job.key[:16], chunk=index
                )
                continue
            deadline = job.lease_deadlines.get(index)
            if deadline is not None and deadline - now < self.lease_duration / 2.0:
                job.lease_deadlines[index] = now + self.lease_duration
                self.metrics.counter("lease.renewed").inc()
        for job in self._jobs.values():
            if job.finished():
                continue
            for index in list(job.in_flight):
                deadline = job.lease_deadlines.get(index)
                if deadline is None or now < deadline:
                    continue
                self.metrics.counter("lease.expired").inc()
                self.tracer.event("lease.expired", job=job.key[:16], chunk=index)
                job.lease_tokens[index] = -1  # fence the lost holder
                job.lease_deadlines.pop(index, None)
                job.no_renew.discard(index)
                self._requeue(job.chunks[index], "lease expired")

    # ------------------------------------------------------------------
    # Outcome handling
    # ------------------------------------------------------------------

    def _check_deadlines(self) -> None:
        now = time.monotonic()
        for job in self._jobs.values():
            if job.finished():
                continue
            tripped = job.deadline is not None and now >= job.deadline
            if not tripped and job.timeout_at is None:
                continue
            job.pending.clear()
            job.aggregate.timed_out = True
            if job.timeout_at is None:
                job.timeout_at = now
                self.tracer.event("job.deadline", job=job.key[:16])
            # In-flight chunks observe the same deadline and return their
            # partial trajectories within moments — wait for that drain (up
            # to a bounded grace) so timed-out work is counted, not lost.
            if not job.in_flight or now >= job.timeout_at + _TIMEOUT_DRAIN_GRACE:
                self._finalize(job)

    def _requeue(self, task: ChunkTask, reason: str, worker_death: bool = False) -> None:
        job = self._jobs.get(task.job_key)
        if job is None or job.finished():
            return
        job.in_flight.discard(task.chunk_index)
        job.lease_deadlines.pop(task.chunk_index, None)
        if task.chunk_index in job.completed:
            return  # result raced in before the death was noticed
        attempts = job.retries.get(task.chunk_index, 0) + 1
        job.retries[task.chunk_index] = attempts
        job.failure_reasons.setdefault(task.chunk_index, []).append(reason)
        self.metrics.counter("scheduler.retries").inc()
        self.tracer.event(
            "chunk.requeue", job=task.job_key[:16],
            chunk=task.chunk_index, attempt=attempts, reason=reason,
        )
        if worker_death:
            deaths = job.worker_deaths.get(task.chunk_index, 0) + 1
            job.worker_deaths[task.chunk_index] = deaths
            if deaths > self.poison_retries:
                self._quarantine_chunk(job, task, attempts, deaths)
                return
        if attempts > self.max_retries:
            job.state = JobState.FAILED
            job.error_kind = "retries"
            job.error = (
                f"chunk {task.chunk_index} failed after {attempts} attempts ({reason})"
            )
            job.pending.clear()
            self._journal_job_done(job, "failed", job.error)
            job.done.set()
        else:
            self.metrics.counter("faults.recovered.requeue").inc()
            job.pending.appendleft(task.chunk_index)

    def _quarantine_chunk(
        self, job: _Job, task: ChunkTask, attempts: int, deaths: int
    ) -> None:
        """A chunk that reliably kills its worker must never requeue again."""
        reasons = job.failure_reasons.get(task.chunk_index, [])
        job.state = JobState.FAILED
        job.error_kind = "poison"
        job.poison_diagnosis = {
            "job_key": job.key,
            "chunk_index": task.chunk_index,
            "first_trajectory": task.first_trajectory,
            "num_trajectories": task.num_trajectories,
            "attempts": attempts,
            "worker_deaths": deaths,
            "reasons": list(reasons),
        }
        job.error = (
            f"chunk {task.chunk_index} quarantined after {deaths} worker-fatal "
            f"attempts (trajectories {task.first_trajectory}.."
            f"{task.first_trajectory + task.num_trajectories - 1}): "
            f"{format_reasons(reasons)}"
        )
        job.pending.clear()
        job.delayed.clear()
        self.metrics.counter("scheduler.poison_quarantined").inc()
        self.tracer.event(
            "chunk.quarantine", job=job.key[:16],
            chunk=task.chunk_index, deaths=deaths,
        )
        self._journal_job_done(job, "failed", job.error)
        job.done.set()

    def _handle_outcome(self, outcome: ChunkOutcome) -> None:
        for handle in self._workers:
            if handle.worker_id == outcome.worker_id:
                handle.busy = None
                break
        job = self._jobs.get(outcome.job_key)
        if job is None or job.finished():
            return  # late result for a cancelled/timed-out/failed job
        if outcome.chunk_index in job.completed:
            return  # duplicate after a spurious requeue
        expected_token = job.lease_tokens.get(outcome.chunk_index)
        if (
            outcome.fencing_token is not None
            and expected_token is not None
            and outcome.fencing_token != expected_token
        ):
            # The chunk's lease expired and ownership moved on; this is a
            # zombie holder's report.  Rejecting it (success or error) is
            # what makes re-executions at-most-once-committed.
            self.metrics.counter("lease.fenced").inc()
            self.tracer.event(
                "lease.fenced", job=outcome.job_key[:16],
                chunk=outcome.chunk_index,
                token=outcome.fencing_token, current=expected_token,
            )
            return
        if outcome.error is not None:
            self._requeue(job.chunks[outcome.chunk_index], outcome.error)
            return
        anomaly = _outcome_anomaly(outcome)
        if anomaly is not None:
            self.metrics.counter("scheduler.outcomes.rejected").inc()
            self.metrics.counter("faults.recovered.outcome_rejected").inc()
            self.tracer.event(
                "chunk.rejected", job=outcome.job_key[:16],
                chunk=outcome.chunk_index, reason=anomaly,
            )
            self._requeue(
                job.chunks[outcome.chunk_index], f"corrupt outcome: {anomaly}"
            )
            return

        assert outcome.result is not None
        job.in_flight.discard(outcome.chunk_index)
        try:  # a spurious requeue may have put the chunk back on pending
            job.pending.remove(outcome.chunk_index)
        except ValueError:
            pass
        job.completed[outcome.chunk_index] = outcome.result
        job.lease_deadlines.pop(outcome.chunk_index, None)
        job.no_renew.discard(outcome.chunk_index)
        job.aggregate.merge(outcome.result)
        self.trajectories_executed += outcome.result.completed_trajectories
        self.metrics.counter("scheduler.trajectories_executed").inc(
            outcome.result.completed_trajectories
        )
        self.metrics.counter("scheduler.chunks_completed").inc()
        job.chunks_since_checkpoint += 1
        if self.journal is not None:
            # WAL ordering: the commit is journaled before any dependent
            # store write, so a crash at any later instant still replays
            # this chunk as done.
            self.journal.chunk_done(
                job.key,
                outcome.chunk_index,
                outcome.first_trajectory,
                outcome.num_trajectories,
                -1 if outcome.fencing_token is None else outcome.fencing_token,
                outcome.result.to_dict(),
            )
        if self._injector is not None and self._injector.fire(
            "scheduler-crash", job_key=job.key, chunk_index=outcome.chunk_index
        ):
            # Die hard with a journaled chunk-done but no further store
            # writes — the deterministic stand-in for kill -9 mid-job.
            os._exit(1)
        if outcome.result.timed_out:
            # The shared deadline tripped inside this chunk; siblings are
            # about to report theirs too.  Finalize once the last in-flight
            # chunk has drained (the deadline check bounds the wait).
            job.pending.clear()
            job.aggregate.timed_out = True
            if job.timeout_at is None:
                job.timeout_at = time.monotonic()
            if not job.in_flight:
                self._finalize(job)
            return
        if len(job.completed) == len(job.chunks):
            self._finalize(job)
        else:
            self._checkpoint(job)

    # ------------------------------------------------------------------
    # Aggregation / persistence
    # ------------------------------------------------------------------

    def _completed_spans(self, job: _Job) -> List[Span]:
        spans = list(job.base_spans)
        spans.extend(
            (result_chunk.first_trajectory, result_chunk.num_trajectories)
            for result_chunk in (job.chunks[i] for i in job.completed)
        )
        return sorted(spans)

    def _ordered_merge(self, job: _Job) -> StochasticResult:
        """Checkpoint-base + completed chunks merged in chunk-index order.

        Both checkpoints and final results go through this, so the merge
        structure — and therefore every floating-point sum — is a function
        of *which* chunks completed, never of the order workers happened
        to finish them in.
        """
        merged = StochasticResult(
            circuit_name=job.spec.circuit.name,
            backend_kind=job.spec.backend_kind,
            requested_trajectories=job.spec.trajectories,
        )
        for prop in job.spec.properties:
            merged.estimates[prop.name] = PropertyEstimate(prop.name)
        if job.base_partial is not None:
            merged.merge(job.base_partial)
        for index in sorted(job.completed):
            merged.merge(job.completed[index])
        return merged

    def _checkpoint(self, job: _Job, force: bool = False) -> None:
        if not force and job.chunks_since_checkpoint < self.checkpoint_every:
            return
        if job.base_partial is None and not job.completed:
            return  # nothing worth persisting yet
        job.chunks_since_checkpoint = 0
        snapshot = self._ordered_merge(job)
        snapshot.timed_out = job.aggregate.timed_out
        snapshot.elapsed_seconds = time.perf_counter() - job.started_at
        self.store.put_partial(job.key, self._completed_spans(job), snapshot)
        self.metrics.counter("scheduler.checkpoint_writes").inc()

    def _finalize(self, job: _Job) -> None:
        """Re-merge in chunk-index order for a deterministic final result."""
        final = self._ordered_merge(job)
        final.timed_out = final.timed_out or job.aggregate.timed_out
        final.elapsed_seconds = time.perf_counter() - job.started_at
        final.workers = self.workers
        # Close the job's root span: the chunk spans merged in from worker
        # results all parent to this id, completing the stitched tree.
        final.trace_events.append(
            {
                "name": "job",
                "start": job.started_monotonic,
                "duration": time.monotonic() - job.started_monotonic,
                "attrs": {
                    "job": job.key[:16],
                    "workers": self.workers,
                    "completed": final.completed_trajectories,
                },
                "trace_id": job.trace_root.trace_id,
                "span_id": job.trace_root.span_id,
                "parent_id": job.trace_root.parent_id,
            }
        )
        job.final = final
        job.state = JobState.COMPLETED
        self.tracer.event(
            "job.finalize", job=job.key[:16],
            completed=final.completed_trajectories, timed_out=final.timed_out,
        )
        complete = final.completed_trajectories >= job.spec.trajectories
        if complete and not final.timed_out:
            self.store.put(job.key, final, spec_dict=job.spec.to_dict())
            # Only complete runs enter the ledger: a timed-out partial's
            # throughput and peak nodes would skew the family history.
            self._ledger_record_run(job, final)
        else:
            # Timed-out / partial outcomes are checkpointed, never cached
            # as final: a resubmission with more budget resumes from here.
            self.store.put_partial(job.key, self._completed_spans(job), final)
        # job-done lands AFTER the store write: a crash in between replays
        # the job as incomplete and the resume finds the cached result —
        # the reverse order could journal "done" with no result on disk.
        self._journal_job_done(job, "completed")
        job.done.set()
