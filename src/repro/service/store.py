"""Content-addressed result store: in-memory LRU over on-disk JSON.

Results are keyed by the job's SHA-256 content hash (:meth:`JobSpec.job_key`).
Three kinds of entries live under the store directory:

* ``results/<key>.json`` — final :class:`StochasticResult` (plus the spec
  that produced it, for provenance and CLI display);
* ``partials/<key>.json`` — checkpoint of a job in flight: the trajectory
  spans already completed and the merged partial result, written by the
  scheduler after (configurably) every chunk so an interrupted job resumes
  instead of restarting at trajectory 0;
* ``queue/<key>.json`` — specs spooled by ``repro submit`` awaiting a
  ``repro serve`` batch runner (managed by :mod:`repro.service.serve`).

A store constructed with ``directory=None`` is memory-only — used by the
:class:`~repro.stochastic.runner.StochasticSimulator` client, which must
not write to disk behind the caller's back.  All reads return independent
copies so callers can never mutate cached state in place.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..stochastic.results import StochasticResult

__all__ = ["ResultStore", "default_store_directory"]

#: Environment variable overriding the default on-disk store location.
STORE_ENV = "REPRO_STORE_DIR"

Span = Tuple[int, int]  #: (first_trajectory, num_trajectories)


def default_store_directory() -> str:
    """Resolve the CLI's store directory (env override, then XDG cache)."""
    override = os.environ.get(STORE_ENV)
    if override:
        return override
    cache_home = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(cache_home, "repro-sim")


class ResultStore:
    """LRU-fronted, content-addressed store of simulation results."""

    def __init__(self, directory: Optional[str] = None, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.directory = directory
        self.capacity = capacity
        self._memory: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        if directory is not None:
            for sub in ("results", "partials", "queue"):
                os.makedirs(os.path.join(directory, sub), exist_ok=True)

    # -- path helpers -----------------------------------------------------

    def _path(self, kind: str, key: str) -> Optional[str]:
        if self.directory is None:
            return None
        return os.path.join(self.directory, kind, f"{key}.json")

    @staticmethod
    def _read_json(path: Optional[str]) -> Optional[Dict[str, object]]:
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None  # a torn write is a cache miss, never an error

    @staticmethod
    def _write_json(path: str, payload: Dict[str, object]) -> None:
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)  # atomic: readers see old or new, never torn

    # -- final results ----------------------------------------------------

    def get(self, key: str) -> Optional[StochasticResult]:
        """Stored final result for ``key`` (an independent copy), or None."""
        entry = self._memory.get(key)
        if entry is None:
            entry = self._read_json(self._path("results", key))
            if entry is not None:
                self._remember(key, entry)
        else:
            self._memory.move_to_end(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return StochasticResult.from_dict(entry["result"])

    def put(
        self,
        key: str,
        result: StochasticResult,
        spec_dict: Optional[Dict[str, object]] = None,
    ) -> None:
        """Store a final result and drop any checkpoint it supersedes."""
        entry: Dict[str, object] = {"result": result.to_dict()}
        if spec_dict is not None:
            entry["spec"] = spec_dict
        self._remember(key, entry)
        path = self._path("results", key)
        if path is not None:
            self._write_json(path, entry)
        self.delete_partial(key)

    def get_spec_dict(self, key: str) -> Optional[Dict[str, object]]:
        """The job spec stored alongside a final result, if any."""
        entry = self._memory.get(key) or self._read_json(self._path("results", key))
        if entry is None:
            return None
        return entry.get("spec")

    def _remember(self, key: str, entry: Dict[str, object]) -> None:
        self._memory[key] = entry
        self._memory.move_to_end(key)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)

    # -- partial checkpoints ----------------------------------------------

    def get_partial(self, key: str) -> Optional[Tuple[List[Span], StochasticResult]]:
        """Checkpoint for ``key``: completed spans + merged partial result."""
        entry = self._read_json(self._path("partials", key))
        if entry is None:
            return None
        spans = [(int(first), int(count)) for first, count in entry["spans"]]
        return spans, StochasticResult.from_dict(entry["result"])

    def put_partial(self, key: str, spans: List[Span], result: StochasticResult) -> None:
        """Checkpoint a job in flight (no-op for memory-only stores)."""
        path = self._path("partials", key)
        if path is None:
            return
        self._write_json(
            path,
            {"spans": [[first, count] for first, count in spans],
             "result": result.to_dict()},
        )

    def delete_partial(self, key: str) -> None:
        path = self._path("partials", key)
        if path is not None and os.path.exists(path):
            try:
                os.remove(path)
            except OSError:
                pass

    # -- enumeration / maintenance ----------------------------------------

    def _list_keys(self, kind: str) -> List[str]:
        if self.directory is None:
            return sorted(self._memory) if kind == "results" else []
        folder = os.path.join(self.directory, kind)
        if not os.path.isdir(folder):
            return []
        return sorted(
            name[: -len(".json")]
            for name in os.listdir(folder)
            if name.endswith(".json")
        )

    def result_keys(self) -> List[str]:
        keys = set(self._memory) | set(self._list_keys("results"))
        return sorted(keys)

    def partial_keys(self) -> List[str]:
        return self._list_keys("partials")

    def queued_keys(self) -> List[str]:
        return self._list_keys("queue")

    def resolve_key(self, prefix: str) -> str:
        """Expand a key prefix to the unique full key it identifies."""
        candidates = {
            key
            for key in (
                self.result_keys() + self.partial_keys() + self.queued_keys()
            )
            if key.startswith(prefix)
        }
        if not candidates:
            raise KeyError(f"no job matching {prefix!r} in the store")
        if len(candidates) > 1:
            raise KeyError(f"ambiguous key prefix {prefix!r}: {sorted(candidates)}")
        return candidates.pop()

    def clear(self) -> int:
        """Drop every entry (results, partials, queued specs); return count."""
        removed = len(self._memory)
        self._memory.clear()
        if self.directory is not None:
            for kind in ("results", "partials", "queue"):
                folder = os.path.join(self.directory, kind)
                if not os.path.isdir(folder):
                    continue
                for name in os.listdir(folder):
                    if name.endswith(".json"):
                        try:
                            os.remove(os.path.join(folder, name))
                            removed += 1
                        except OSError:
                            pass
        return removed

    def stats(self) -> Dict[str, object]:
        """Occupancy and hit-rate counters (``repro cache show``)."""
        disk_bytes = 0
        if self.directory is not None:
            for kind in ("results", "partials", "queue"):
                folder = os.path.join(self.directory, kind)
                if not os.path.isdir(folder):
                    continue
                for name in os.listdir(folder):
                    try:
                        disk_bytes += os.path.getsize(os.path.join(folder, name))
                    except OSError:
                        pass
        return {
            "directory": self.directory,
            "results": len(self.result_keys()),
            "partials": len(self.partial_keys()),
            "queued": len(self.queued_keys()),
            "memory_entries": len(self._memory),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "disk_bytes": disk_bytes,
        }
