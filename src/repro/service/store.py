"""Content-addressed result store: in-memory LRU over on-disk JSON.

Results are keyed by the job's SHA-256 content hash (:meth:`JobSpec.job_key`).
Three kinds of entries live under the store directory:

* ``results/<key>.json`` — final :class:`StochasticResult` (plus the spec
  that produced it, for provenance and CLI display);
* ``partials/<key>.json`` — checkpoint of a job in flight: the trajectory
  spans already completed and the merged partial result, written by the
  scheduler after (configurably) every chunk so an interrupted job resumes
  instead of restarting at trajectory 0;
* ``queue/<key>.json`` — specs spooled by ``repro submit`` awaiting a
  ``repro serve`` batch runner (managed by :mod:`repro.service.serve`).

Integrity
---------
Every on-disk entry is an envelope ``{"schema": "repro.store/v2",
"sha256": <hex>, "payload": {...}}`` where the digest covers the
payload's canonical JSON.  Reads verify the digest; an entry that fails —
torn write, flipped bit, unknown schema, unparsable JSON — is
**quarantined** to a ``*.corrupt`` sibling, counted in the store's
``store.corruption.*`` metrics, and reported as a cache miss.  Corruption
is never a silent ``None``: the quarantined file survives for post-mortem
and the counters surface through ``repro stats`` / ``repro cache show``.
Pre-checksum (v1) entries — a bare payload object — are still readable.

A store constructed with ``directory=None`` is memory-only — used by the
:class:`~repro.stochastic.runner.StochasticSimulator` client, which must
not write to disk behind the caller's back.  All reads return independent
copies so callers can never mutate cached state in place.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..errors import StoreCorruptionError
from ..faults.inject import get_injector
from ..obs.metrics import MetricsRegistry
from ..stochastic.results import StochasticResult

__all__ = ["ResultStore", "default_store_directory", "StoreCorruptionError"]

#: Environment variable overriding the default on-disk store location.
STORE_ENV = "REPRO_STORE_DIR"

#: Envelope schema for checksummed entries; bump when the layout changes.
STORE_SCHEMA = "repro.store/v2"

Span = Tuple[int, int]  #: (first_trajectory, num_trajectories)

#: Seconds the store sheds *sheddable* writes (checkpoints) after a write
#: failure — the ENOSPC degraded mode: checkpoint granularity is lost
#: before results are (final ``put`` writes are always attempted).
DEFAULT_DEGRADED_COOLDOWN = 5.0


def default_store_directory() -> str:
    """Resolve the CLI's store directory (env override, then XDG cache)."""
    override = os.environ.get(STORE_ENV)
    if override:
        return override
    cache_home = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(cache_home, "repro-sim")


def _canonical_payload_json(payload: Dict[str, object]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _payload_digest(payload: Dict[str, object]) -> str:
    return hashlib.sha256(_canonical_payload_json(payload).encode("utf-8")).hexdigest()


class ResultStore:
    """LRU-fronted, content-addressed store of simulation results."""

    def __init__(
        self,
        directory: Optional[str] = None,
        capacity: int = 128,
        degraded_cooldown: float = DEFAULT_DEGRADED_COOLDOWN,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.directory = directory
        self.capacity = capacity
        self.degraded_cooldown = degraded_cooldown
        #: Monotonic instant until which sheddable writes are shed.
        self._degraded_until = 0.0
        self._memory: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: Human-readable detail of the most recent corruption / write
        #: failure (diagnostics for logs and tests; counters are canonical).
        self.last_corruption: Optional[str] = None
        self.last_write_error: Optional[str] = None
        #: Store-side observability: corruption quarantines and write
        #: failures by kind (see docs/ROBUSTNESS.md for the catalogue).
        self.metrics = MetricsRegistry()
        for name in (
            "store.corruption.quarantined",
            "store.write.errors",
            "store.degraded.entered",
            "store.degraded.skipped",
            "faults.recovered.store_quarantine",
            "faults.recovered.write_skipped",
        ):
            self.metrics.counter(name)
        if directory is not None:
            for sub in ("results", "partials", "queue"):
                os.makedirs(os.path.join(directory, sub), exist_ok=True)

    # -- path helpers -----------------------------------------------------

    def _path(self, kind: str, key: str) -> Optional[str]:
        if self.directory is None:
            return None
        return os.path.join(self.directory, kind, f"{key}.json")

    # -- verified read / checksummed write --------------------------------

    def _quarantine(self, path: str, kind: str, error: Exception) -> None:
        """Move a corrupt entry aside so it can never answer a read again."""
        corrupt = f"{path}.corrupt"
        try:
            os.replace(path, corrupt)
        except OSError:
            try:  # cannot even rename — remove so the poison stops here
                os.remove(path)
            except OSError:
                pass
        self.metrics.counter("store.corruption.quarantined").inc()
        self.metrics.counter(f"store.corruption.{kind}").inc()
        self.metrics.counter("faults.recovered.store_quarantine").inc()
        self.last_corruption = f"{os.path.basename(path)}: {error}"

    def _read_verified(self, path: str) -> Optional[Dict[str, object]]:
        """Parse and integrity-check one entry; raises on corruption."""
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except OSError:
            return None  # transiently unreadable is a miss, not corruption
        try:
            text = raw.decode("utf-8")
        except UnicodeDecodeError as error:
            # Flipped bits routinely produce invalid UTF-8 — that is
            # corruption to quarantine, not an exception to propagate.
            raise StoreCorruptionError(f"undecodable bytes ({error})") from error
        try:
            data = json.loads(text)
        except ValueError as error:
            raise StoreCorruptionError(f"unparsable JSON ({error})") from error
        if not isinstance(data, dict):
            raise StoreCorruptionError("entry is not a JSON object")
        schema = data.get("schema")
        if schema == STORE_SCHEMA:
            payload = data.get("payload")
            if not isinstance(payload, dict):
                raise StoreCorruptionError("envelope has no payload object")
            digest = data.get("sha256")
            actual = _payload_digest(payload)
            if digest != actual:
                raise StoreCorruptionError(
                    f"checksum mismatch (stored {str(digest)[:12]}…, "
                    f"computed {actual[:12]}…)"
                )
            return payload
        if schema is not None:
            raise StoreCorruptionError(f"unknown store schema {schema!r}")
        return data  # legacy v1 entry: bare payload, no checksum

    def _read_entry(self, kind: str, key: str) -> Optional[Dict[str, object]]:
        """Payload for one entry, quarantining corruption (reported as miss)."""
        path = self._path(kind, key)
        if path is None or not os.path.exists(path):
            return None
        try:
            return self._read_verified(path)
        except StoreCorruptionError as error:
            self._quarantine(path, kind, error)
            return None

    def _write_json(
        self, kind: str, key: str, payload: Dict[str, object], operation: str
    ) -> None:
        """Atomically write a checksummed envelope (with fault injection).

        Raises ``OSError`` on write failure — callers decide whether a
        lost write is fatal (queue spooling) or degradable (caching).
        """
        path = self._path(kind, key)
        assert path is not None
        injector = get_injector()
        if injector is not None and injector.fire(
            "enospc", operation=operation, job_key=key
        ):
            raise OSError(errno.ENOSPC, "No space left on device [injected]")
        envelope = {
            "schema": STORE_SCHEMA,
            "sha256": _payload_digest(payload),
            "payload": payload,
        }
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(envelope, handle)
        os.replace(tmp, path)  # atomic: readers see old or new, never torn
        if injector is not None:
            if injector.fire("torn-write", operation=operation, job_key=key):
                size = os.path.getsize(path)
                with open(path, "r+b") as handle:
                    handle.truncate(max(1, size // 2))
            if injector.fire("bit-flip", operation=operation, job_key=key):
                with open(path, "r+b") as handle:
                    raw = handle.read()
                    position = len(raw) // 2
                    handle.seek(position)
                    handle.write(bytes([raw[position] ^ 0xFF]))

    @property
    def degraded(self) -> bool:
        """True while the store is shedding checkpoint writes (post-failure)."""
        return time.monotonic() < self._degraded_until

    def _write_cached(
        self,
        kind: str,
        key: str,
        payload: Dict[str, object],
        operation: str,
        sheddable: bool = False,
    ) -> None:
        """Best-effort cache write: failures are counted, never raised.

        A failure opens a degraded-mode cooldown during which *sheddable*
        writes (checkpoints) are skipped outright — when the disk is full,
        hammering it with checkpoint traffic only delays the final result
        write, which is always attempted.
        """
        if self.directory is None:
            return
        if sheddable and self.degraded:
            self.metrics.counter("store.degraded.skipped").inc()
            return
        try:
            self._write_json(kind, key, payload, operation)
        except OSError as error:
            self.metrics.counter("store.write.errors").inc()
            self.metrics.counter("faults.recovered.write_skipped").inc()
            self.metrics.counter("store.degraded.entered").inc()
            self._degraded_until = time.monotonic() + self.degraded_cooldown
            self.last_write_error = f"{operation} {key[:16]}…: {error}"

    # -- final results ----------------------------------------------------

    def get(self, key: str) -> Optional[StochasticResult]:
        """Stored final result for ``key`` (an independent copy), or None."""
        entry = self._memory.get(key)
        if entry is None:
            entry = self._read_entry("results", key)
            if entry is not None:
                self._remember(key, entry)
        else:
            self._memory.move_to_end(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return StochasticResult.from_dict(entry["result"])

    def put(
        self,
        key: str,
        result: StochasticResult,
        spec_dict: Optional[Dict[str, object]] = None,
    ) -> None:
        """Store a final result and drop any checkpoint it supersedes.

        The disk write is best-effort: a full disk degrades the store to
        memory-only for this entry (counted in ``store.write.errors``)
        instead of failing the job that produced the result.
        """
        entry: Dict[str, object] = {"result": result.to_dict()}
        if spec_dict is not None:
            entry["spec"] = spec_dict
        self._remember(key, entry)
        self._write_cached("results", key, entry, "put")
        self.delete_partial(key)

    def get_spec_dict(self, key: str) -> Optional[Dict[str, object]]:
        """The job spec stored alongside a final result, if any."""
        entry = self._memory.get(key) or self._read_entry("results", key)
        if entry is None:
            return None
        return entry.get("spec")

    def _remember(self, key: str, entry: Dict[str, object]) -> None:
        self._memory[key] = entry
        self._memory.move_to_end(key)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)

    # -- partial checkpoints ----------------------------------------------

    def get_partial(self, key: str) -> Optional[Tuple[List[Span], StochasticResult]]:
        """Checkpoint for ``key``: completed spans + merged partial result."""
        entry = self._read_entry("partials", key)
        if entry is None:
            return None
        try:
            spans = [(int(first), int(count)) for first, count in entry["spans"]]
            result = StochasticResult.from_dict(entry["result"])
        except (KeyError, TypeError, ValueError) as error:
            # Structurally broken despite a valid checksum (schema skew):
            # quarantine like any other corruption rather than crash resume.
            path = self._path("partials", key)
            if path is not None:
                self._quarantine(path, "partials", StoreCorruptionError(str(error)))
            return None
        return spans, result

    def put_partial(self, key: str, spans: List[Span], result: StochasticResult) -> None:
        """Checkpoint a job in flight (no-op for memory-only stores).

        Best-effort like :meth:`put`: a failed checkpoint write costs
        resume granularity, not the job.
        """
        self._write_cached(
            "partials",
            key,
            {"spans": [[first, count] for first, count in spans],
             "result": result.to_dict()},
            "put_partial",
            sheddable=True,
        )

    def delete_partial(self, key: str) -> None:
        path = self._path("partials", key)
        if path is not None and os.path.exists(path):
            try:
                os.remove(path)
            except OSError:
                pass

    # -- queued specs ------------------------------------------------------

    def put_queued(self, key: str, spec_dict: Dict[str, object]) -> None:
        """Spool a job spec for a batch runner.  Raises ``OSError`` on
        write failure — a submission that was never durably queued must
        not be reported as queued."""
        if self.directory is None:
            raise ValueError("queueing requires a store with an on-disk directory")
        self._write_json("queue", key, spec_dict, "put_queued")

    def get_queued(self, key: str) -> Optional[Dict[str, object]]:
        """A spooled spec's payload dict (corruption quarantined → None)."""
        return self._read_entry("queue", key)

    def delete_queued(self, key: str) -> None:
        path = self._path("queue", key)
        if path is not None and os.path.exists(path):
            try:
                os.remove(path)
            except OSError:
                pass

    # -- enumeration / maintenance ----------------------------------------

    def _list_keys(self, kind: str) -> List[str]:
        if self.directory is None:
            return sorted(self._memory) if kind == "results" else []
        folder = os.path.join(self.directory, kind)
        if not os.path.isdir(folder):
            return []
        return sorted(
            name[: -len(".json")]
            for name in os.listdir(folder)
            if name.endswith(".json")
        )

    def result_keys(self) -> List[str]:
        keys = set(self._memory) | set(self._list_keys("results"))
        return sorted(keys)

    def partial_keys(self) -> List[str]:
        return self._list_keys("partials")

    def queued_keys(self) -> List[str]:
        return self._list_keys("queue")

    def corrupt_entries(self) -> List[str]:
        """Quarantined files (relative to the store directory), sorted."""
        if self.directory is None:
            return []
        found: List[str] = []
        for kind in ("results", "partials", "queue"):
            folder = os.path.join(self.directory, kind)
            if not os.path.isdir(folder):
                continue
            found.extend(
                os.path.join(kind, name)
                for name in os.listdir(folder)
                if name.endswith(".corrupt")
            )
        return sorted(found)

    def resolve_key(self, prefix: str) -> str:
        """Expand a key prefix to the unique full key it identifies.

        An ambiguous prefix lists the (truncated) matching keys so the
        caller can immediately retype a longer prefix.
        """
        candidates = {
            key
            for key in (
                self.result_keys() + self.partial_keys() + self.queued_keys()
            )
            if key.startswith(prefix)
        }
        if not candidates:
            raise KeyError(f"no job matching {prefix!r} in the store")
        if len(candidates) > 1:
            ordered = sorted(candidates)
            shown = ", ".join(f"{key[:12]}…" for key in ordered[:8])
            extra = len(ordered) - 8
            more = f" (+{extra} more)" if extra > 0 else ""
            raise KeyError(
                f"ambiguous key prefix {prefix!r}: matches {shown}{more} — "
                f"use a longer prefix"
            )
        return candidates.pop()

    def clear(self) -> int:
        """Drop every entry (results, partials, queued specs); return count."""
        removed = len(self._memory)
        self._memory.clear()
        if self.directory is not None:
            for kind in ("results", "partials", "queue"):
                folder = os.path.join(self.directory, kind)
                if not os.path.isdir(folder):
                    continue
                for name in os.listdir(folder):
                    if name.endswith(".json") or name.endswith(".corrupt"):
                        try:
                            os.remove(os.path.join(folder, name))
                            removed += 1
                        except OSError:
                            pass
        return removed

    def stats(self) -> Dict[str, object]:
        """Occupancy and hit-rate counters (``repro cache show``)."""
        disk_bytes = 0
        ledger_bytes = 0
        ledger_families = 0
        ledger_runs = 0
        if self.directory is not None:
            for kind in ("results", "partials", "queue"):
                folder = os.path.join(self.directory, kind)
                if not os.path.isdir(folder):
                    continue
                for name in os.listdir(folder):
                    try:
                        disk_bytes += os.path.getsize(os.path.join(folder, name))
                    except OSError:
                        pass
            # Run-ledger occupancy (repro.obs.ledger): family history that
            # feeds the measured dispatch cost model and `repro history`.
            from ..obs.ledger import ledger_path, replay_ledger

            runs_file = ledger_path(self.directory)
            try:
                ledger_bytes = os.path.getsize(runs_file)
            except OSError:
                ledger_bytes = 0
            if ledger_bytes:
                state = replay_ledger(runs_file)
                ledger_families = len(state.aggregates)
                ledger_runs = state.total_runs()
        counters = self.metrics.snapshot()["counters"]
        return {
            "directory": self.directory,
            "results": len(self.result_keys()),
            "partials": len(self.partial_keys()),
            "queued": len(self.queued_keys()),
            "corrupt": len(self.corrupt_entries()),
            "memory_entries": len(self._memory),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "disk_bytes": disk_bytes,
            "ledger_bytes": ledger_bytes,
            "ledger_families": ledger_families,
            "ledger_runs": ledger_runs,
            "quarantined": counters["store.corruption.quarantined"],
            "write_errors": counters["store.write.errors"],
        }
