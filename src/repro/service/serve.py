"""Batch-runner mode: drain a spool directory of submitted jobs.

``repro submit`` serialises a :class:`JobSpec` into ``<store>/queue/<key>.json``;
:func:`serve` (the engine behind ``repro serve``) picks queued specs up in
submission order, runs them on a persistent :class:`Scheduler`, and leaves
final results — and, while a job is still running, streaming checkpoints —
in the same store, where ``repro status`` and ``repro result`` (separate
processes) find them.  This decouples producers from the worker pool: many
``submit`` invocations feed one long-lived ``serve`` process.
"""

from __future__ import annotations

import os
import time
from typing import Callable, List, Optional, Tuple

from .job import JobSpec, JobState, JobStatus, StreamingEstimate
from .scheduler import Scheduler, SchedulerError
from .store import ResultStore

__all__ = ["enqueue_job", "list_queue", "query_status", "serve"]


def enqueue_job(store: ResultStore, spec: JobSpec) -> Tuple[str, bool]:
    """Spool a job spec for a batch runner; returns (key, was_cached).

    A spec whose result is already stored is *not* enqueued — the
    submission is answered by the cache, no workers ever run.
    """
    if store.directory is None:
        raise ValueError("enqueue_job needs a store with an on-disk directory")
    key = spec.job_key()
    if store.get(key) is not None:
        return key, True
    store.put_queued(key, spec.to_dict())
    return key, False


def list_queue(store: ResultStore) -> List[str]:
    """Queued job keys in submission (mtime, then name) order."""
    if store.directory is None:
        return []
    folder = os.path.join(store.directory, "queue")
    if not os.path.isdir(folder):
        return []
    entries = []
    for name in os.listdir(folder):
        if not name.endswith(".json"):
            continue
        path = os.path.join(folder, name)
        try:
            entries.append((os.path.getmtime(path), name[: -len(".json")]))
        except OSError:
            continue
    return [key for _, key in sorted(entries)]


def _dequeue(store: ResultStore, key: str) -> Optional[JobSpec]:
    data = store.get_queued(key)  # checksum-verified; corruption quarantined
    if data is None:
        return None
    try:
        return JobSpec.from_dict(data)
    except (KeyError, ValueError, TypeError):
        return None


def query_status(store: ResultStore, key: str) -> JobStatus:
    """Reconstruct a job's status purely from the store (cross-process).

    This is what lets ``repro status`` observe a job that a separate
    ``repro serve`` process is running: final results, streaming
    checkpoints, and queued specs all live on disk.
    """

    def estimates_of(result) -> dict:
        return {
            name: StreamingEstimate(
                name=name,
                mean=estimate.mean,
                halfwidth=estimate.hoeffding_halfwidth(),
                count=estimate.count,
            )
            for name, estimate in result.estimates.items()
            if estimate.count > 0
        }

    final = store.get(key)
    if final is not None:
        return JobStatus(
            key=key,
            state=JobState.COMPLETED,
            circuit_name=final.circuit_name,
            requested_trajectories=final.requested_trajectories,
            completed_trajectories=final.completed_trajectories,
            estimates=estimates_of(final),
            elapsed_seconds=final.elapsed_seconds,
            metrics=dict(final.metrics),
        )
    checkpoint = store.get_partial(key)
    if checkpoint is not None:
        _, partial = checkpoint
        return JobStatus(
            key=key,
            state=JobState.RUNNING,
            circuit_name=partial.circuit_name,
            requested_trajectories=partial.requested_trajectories,
            completed_trajectories=partial.completed_trajectories,
            estimates=estimates_of(partial),
            elapsed_seconds=partial.elapsed_seconds,
            metrics=dict(partial.metrics),
        )
    if key in store.queued_keys():
        spec = _dequeue(store, key)
        return JobStatus(
            key=key,
            state=JobState.QUEUED,
            circuit_name=spec.circuit.name if spec else "?",
            requested_trajectories=spec.trajectories if spec else 0,
        )
    raise KeyError(f"unknown job {key!r}")


def serve(
    store: ResultStore,
    workers: int = 2,
    once: bool = False,
    poll_interval: float = 0.5,
    chunk_size: Optional[int] = None,
    max_retries: int = 2,
    max_jobs: Optional[int] = None,
    log: Callable[[str], None] = print,
) -> int:
    """Process queued jobs until the queue stays empty (``once``) or forever.

    Returns the number of jobs executed.  Jobs that fail (retry budget
    exhausted) are logged and dequeued so one poisoned spec cannot wedge
    the queue; their partial checkpoints remain for post-mortem or resume.
    """
    processed = 0
    with Scheduler(
        workers=workers,
        store=store,
        chunk_size=chunk_size,
        max_retries=max_retries,
    ) as scheduler:
        while True:
            keys = list_queue(store)
            if not keys:
                if once:
                    break
                time.sleep(poll_interval)
                continue
            for key in keys:
                spec = _dequeue(store, key)
                if spec is None:
                    log(f"[serve] dropping unreadable queue entry {key[:16]}…")
                    store.delete_queued(key)
                    continue
                log(
                    f"[serve] job {key[:16]}… ({spec.circuit.name}, "
                    f"M={spec.trajectories}, backend={spec.backend_kind})"
                )
                try:
                    result = scheduler.run(spec)
                    log(
                        f"[serve] job {key[:16]}… done: "
                        f"{result.completed_trajectories}/{spec.trajectories} "
                        f"trajectories in {result.elapsed_seconds:.3f} s"
                    )
                except SchedulerError as error:
                    log(f"[serve] job {key[:16]}… FAILED: {error}")
                finally:
                    store.delete_queued(key)
                processed += 1
                if max_jobs is not None and processed >= max_jobs:
                    return processed
    return processed
