"""Batch-runner mode: drain a spool directory of submitted jobs.

``repro submit`` serialises a :class:`JobSpec` into ``<store>/queue/<key>.json``;
:func:`serve` (the engine behind ``repro serve``) picks queued specs up in
submission order, runs them on a persistent :class:`Scheduler`, and leaves
final results — and, while a job is still running, streaming checkpoints —
in the same store, where ``repro status`` and ``repro result`` (separate
processes) find them.  This decouples producers from the worker pool: many
``submit`` invocations feed one long-lived ``serve`` process.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from typing import Callable, List, Optional, Tuple

from ..exact.cost import estimate_costs
from ..obs.context import write_chrome_trace
from ..obs.export import EventLogWriter, MetricsExporter, to_openmetrics
from ..obs.ledger import RunLedger, ledger_path, replay_ledger
from ..obs.metrics import MetricsRegistry, derive_rates, merge_snapshots
from ..stochastic.results import StochasticResult
from .job import JobSpec, JobState, JobStatus, StreamingEstimate
from .journal import JobJournal, JournalJob, journal_path, replay_journal
from .scheduler import Scheduler, SchedulerError
from .store import ResultStore

__all__ = ["enqueue_job", "list_queue", "list_jobs", "query_status", "serve"]


def enqueue_job(store: ResultStore, spec: JobSpec) -> Tuple[str, bool]:
    """Spool a job spec for a batch runner; returns (key, was_cached).

    A spec whose result is already stored is *not* enqueued — the
    submission is answered by the cache, no workers ever run.
    """
    if store.directory is None:
        raise ValueError("enqueue_job needs a store with an on-disk directory")
    key = spec.job_key()
    if store.get(key) is not None:
        return key, True
    store.put_queued(key, spec.to_dict())
    return key, False


def list_queue(store: ResultStore) -> List[str]:
    """Queued job keys in submission (mtime, then name) order."""
    if store.directory is None:
        return []
    folder = os.path.join(store.directory, "queue")
    if not os.path.isdir(folder):
        return []
    entries = []
    for name in os.listdir(folder):
        if not name.endswith(".json"):
            continue
        path = os.path.join(folder, name)
        try:
            entries.append((os.path.getmtime(path), name[: -len(".json")]))
        except OSError:
            continue
    return [key for _, key in sorted(entries)]


def _dispatch_preview(spec: Optional[JobSpec], history) -> Tuple[str, Optional[str]]:
    """(method, one-line dispatch evidence) a spec would resolve to.

    ``method="auto"`` specs are scored through the cost model against the
    store's run-ledger history — the same comparison the scheduler will
    make — and annotated ``auto:<choice>`` with the decision's rendered
    evidence line.  Explicit methods pass through without evidence.
    Best-effort: any scoring failure degrades to the raw method.
    """
    if spec is None:
        return "?", None
    if spec.method != "auto":
        return spec.method, None
    try:
        decision = estimate_costs(
            spec.circuit,
            spec.noise_model,
            spec.properties,
            spec.trajectories,
            backend_kind=spec.backend_kind,
            history=history,
        )
    except Exception:
        return spec.method, None
    return f"auto:{decision.method}", decision.render()


def list_jobs(store: ResultStore) -> List[dict]:
    """Resumable work visible in the store (``repro jobs``).

    One row per job, keyed by where the resumable state lives:
    ``journal`` (incomplete in the write-ahead journal — what
    ``serve --resume`` restarts, with its committed-chunk progress),
    ``queued`` (spooled spec not yet picked up), or ``checkpoint``
    (an orphaned partial with no journal entry, resumable by plain
    resubmission).  Each row carries its resolved ``method`` and, for
    ``auto`` specs, the one-line ``dispatch`` evidence the cost model
    would cite — scored against the store's run-ledger history.
    """
    rows: List[dict] = []
    seen = set()
    history = None
    if store.directory is not None:
        history = replay_ledger(ledger_path(store.directory)).aggregates
        for job in replay_journal(journal_path(store.directory)).values():
            if job.done:
                continue
            row: dict = {
                "key": job.key,
                "source": "journal",
                "planned_chunks": len(job.plan),
                "completed_chunks": len(job.completed),
                "completed_trajectories": job.completed_trajectories(),
                "trajectories": job.planned_trajectories(),
            }
            if job.spec_dict is not None:
                row["circuit"] = str(job.spec_dict.get("circuit_name", "?"))
                row["trajectories"] = int(job.spec_dict.get("trajectories", 0))
                try:
                    journaled_spec: Optional[JobSpec] = JobSpec.from_dict(
                        job.spec_dict
                    )
                except (KeyError, TypeError, ValueError):
                    journaled_spec = None
                method, evidence = _dispatch_preview(journaled_spec, history)
                row["method"] = method
                if evidence is not None:
                    row["dispatch"] = evidence
            rows.append(row)
            seen.add(job.key)
    for key in list_queue(store):
        if key in seen:
            continue
        spec = _dequeue(store, key)
        method, evidence = _dispatch_preview(spec, history)
        row = {
            "key": key,
            "source": "queued",
            "circuit": spec.circuit.name if spec else "?",
            "trajectories": spec.trajectories if spec else 0,
            "completed_trajectories": 0,
            "method": method,
        }
        if evidence is not None:
            row["dispatch"] = evidence
        rows.append(row)
        seen.add(key)
    for key in store.partial_keys():
        if key in seen:
            continue
        checkpoint = store.get_partial(key)
        if checkpoint is None:
            continue
        _, partial = checkpoint
        rows.append(
            {
                "key": key,
                "source": "checkpoint",
                "circuit": partial.circuit_name,
                "trajectories": partial.requested_trajectories,
                "completed_trajectories": partial.completed_trajectories,
                # Checkpoints only ever come from stochastic execution.
                "method": "stochastic",
            }
        )
    return rows


def _dequeue(store: ResultStore, key: str) -> Optional[JobSpec]:
    data = store.get_queued(key)  # checksum-verified; corruption quarantined
    if data is None:
        return None
    try:
        return JobSpec.from_dict(data)
    except (KeyError, ValueError, TypeError):
        return None


def query_status(store: ResultStore, key: str) -> JobStatus:
    """Reconstruct a job's status purely from the store (cross-process).

    This is what lets ``repro status`` observe a job that a separate
    ``repro serve`` process is running: final results, streaming
    checkpoints, and queued specs all live on disk.
    """

    def estimates_of(result) -> dict:
        return {
            name: StreamingEstimate(
                name=name,
                mean=estimate.mean,
                halfwidth=estimate.hoeffding_halfwidth(),
                count=estimate.count,
            )
            for name, estimate in result.estimates.items()
            if estimate.count > 0
        }

    final = store.get(key)
    if final is not None:
        return JobStatus(
            key=key,
            state=JobState.COMPLETED,
            circuit_name=final.circuit_name,
            requested_trajectories=final.requested_trajectories,
            completed_trajectories=final.completed_trajectories,
            estimates=estimates_of(final),
            elapsed_seconds=final.elapsed_seconds,
            method=final.method,
            metrics=dict(final.metrics),
        )
    checkpoint = store.get_partial(key)
    if checkpoint is not None:
        _, partial = checkpoint
        return JobStatus(
            key=key,
            state=JobState.RUNNING,
            circuit_name=partial.circuit_name,
            requested_trajectories=partial.requested_trajectories,
            completed_trajectories=partial.completed_trajectories,
            estimates=estimates_of(partial),
            elapsed_seconds=partial.elapsed_seconds,
            metrics=dict(partial.metrics),
        )
    if key in store.queued_keys():
        spec = _dequeue(store, key)
        return JobStatus(
            key=key,
            state=JobState.QUEUED,
            circuit_name=spec.circuit.name if spec else "?",
            requested_trajectories=spec.trajectories if spec else 0,
        )
    raise KeyError(f"unknown job {key!r}")


class _Telemetry:
    """Live telemetry surface for one :func:`serve` process.

    Owns the OpenMetrics endpoint, the JSONL event stream, the heartbeat
    thread, and the per-job Chrome-trace writer.  Every piece is optional
    and best-effort — telemetry must never take the serve loop down — and
    the whole object is a no-op context manager when nothing is enabled.
    """

    def __init__(
        self,
        store: ResultStore,
        scheduler: Scheduler,
        metrics_port: Optional[int],
        events_log: Optional[str],
        trace_dir: Optional[str],
        heartbeat_interval: float,
        log: Callable[[str], None],
    ) -> None:
        self._store = store
        self._scheduler = scheduler
        self._trace_dir = trace_dir
        self._log = log
        self.registry = MetricsRegistry()
        self._lock = threading.Lock()
        self._current_key: Optional[str] = None
        #: Last observed status — retained after a job completes so a
        #: scrape arriving just after the final chunk still sees the
        #: job's estimates and Hoeffding half-widths.
        self._last_status: Optional[JobStatus] = None
        self._stop = threading.Event()
        self._heartbeat: Optional[threading.Thread] = None
        self.exporter: Optional[MetricsExporter] = None
        self.events: Optional[EventLogWriter] = None
        if metrics_port is not None:
            self.exporter = MetricsExporter(
                self.render_openmetrics, port=metrics_port, registry=self.registry
            )
            log(f"[serve] metrics endpoint at {self.exporter.url}")
        if events_log is not None:
            self.events = EventLogWriter(events_log, registry=self.registry)
            self._heartbeat = threading.Thread(
                target=self._heartbeat_loop,
                args=(max(0.05, heartbeat_interval),),
                name="repro-serve-heartbeat",
                daemon=True,
            )
            self._heartbeat.start()

    # -- job lifecycle hooks (called from the serve loop) ---------------

    def job_started(self, key: str, spec: JobSpec) -> None:
        with self._lock:
            self._current_key = key
        self.emit(
            "job.start",
            job=key,
            circuit=spec.circuit.name,
            trajectories=spec.trajectories,
            backend=spec.backend_kind,
        )

    def job_finished(
        self, key: str, result=None, error: Optional[str] = None, decision=None
    ) -> None:
        status = self._refresh_status()
        with self._lock:
            self._current_key = None
            if status is not None:
                self._last_status = status
        if error is not None:
            self.emit("job.failed", job=key, error=error)
        else:
            fields: dict = {
                "job": key,
                "completed": result.completed_trajectories,
                "elapsed_seconds": result.elapsed_seconds,
                "method": result.method,
            }
            if decision is not None:
                # Auto-dispatch evidence trail: what basis the cost model
                # routed on, citing ledger history when it was measured.
                fields["dispatch"] = decision.render()
                fields["dispatch_evidence"] = decision.evidence
                fields["fingerprint"] = decision.fingerprint
            self.emit("job.done", **fields)
            self._write_trace(key, result)

    def _write_trace(self, key: str, result) -> None:
        if self._trace_dir is None or not result.trace_events:
            return
        try:
            os.makedirs(self._trace_dir, exist_ok=True)
            path = os.path.join(self._trace_dir, f"{key[:16]}.trace.json")
            write_chrome_trace(path, result.trace_events)
            self.registry.counter("export.traces.written").inc()
            self._log(f"[serve] wrote Chrome trace {path}")
        except OSError as error:  # telemetry is best-effort
            self._log(f"[serve] trace write failed: {error}")

    # -- collection -----------------------------------------------------

    def _refresh_status(self) -> Optional[JobStatus]:
        with self._lock:
            key = self._current_key
            cached = self._last_status
        if key is None:
            return cached
        try:
            status = self._scheduler.status(key)
        except KeyError:
            return cached
        with self._lock:
            self._last_status = status
        return status

    def snapshot(self) -> dict:
        """Merged scheduler + store + export metrics with live gauges."""
        snapshot = merge_snapshots(
            self._scheduler.metrics_snapshot(), self.registry.snapshot()
        )
        snapshot.setdefault("gauges", {})["service.queue.depth"] = float(
            len(list_queue(self._store))
        )
        return snapshot

    def render_openmetrics(self) -> str:
        """Collect callback for :class:`MetricsExporter` (scrape thread)."""
        labeled = []
        status = self._refresh_status()
        if status is not None:
            job = status.key[:16]
            for name, estimate in sorted(status.estimates.items()):
                labels = {"property": name, "job": job}
                labeled.append(("job.estimate.mean", labels, estimate.mean))
                labeled.append(
                    ("job.estimate.halfwidth", labels, estimate.halfwidth)
                )
                labeled.append(
                    ("job.estimate.count", labels, float(estimate.count))
                )
            labeled.append(
                (
                    "job.progress.trajectories",
                    {"job": job, "state": status.state.value},
                    float(status.completed_trajectories),
                )
            )
        return to_openmetrics(self.snapshot(), labeled)

    # -- event stream ---------------------------------------------------

    def emit(self, event: str, **fields: object) -> None:
        if self.events is None:
            return
        record = {"event": event, "ts": time.time()}
        record.update(fields)
        try:
            self.events.write(record)
        except OSError as error:
            self._log(f"[serve] event write failed: {error}")

    def _heartbeat_loop(self, interval: float) -> None:
        while not self._stop.wait(interval):
            try:
                snapshot = self.snapshot()
                fields = {
                    "queue_depth": snapshot["gauges"]["service.queue.depth"],
                    "counters": snapshot.get("counters", {}),
                    "rates": derive_rates(snapshot),
                }
                status = self._refresh_status()
                if status is not None:
                    fields["job"] = status.key[:16]
                    fields["state"] = status.state.value
                    fields["completed"] = status.completed_trajectories
                    fields["estimates"] = {
                        name: {"mean": est.mean, "halfwidth": est.halfwidth}
                        for name, est in sorted(status.estimates.items())
                    }
                self.emit("heartbeat", **fields)
            except Exception as error:  # never kill telemetry
                self._log(f"[serve] heartbeat failed: {error}")

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        self._stop.set()
        if self._heartbeat is not None:
            self._heartbeat.join(timeout=5.0)
        if self.exporter is not None:
            self.exporter.close()
        if self.events is not None:
            self.events.close()

    def __enter__(self) -> "_Telemetry":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _restore_chunk_results(journaled: JournalJob):
    """Parse a journaled job's committed chunk results (skip unparsable)."""
    completed = {}
    for index, payload in journaled.completed.items():
        try:
            completed[index] = StochasticResult.from_dict(payload)
        except (KeyError, TypeError, ValueError):
            continue
    base_partial = None
    if journaled.base_result is not None:
        try:
            base_partial = StochasticResult.from_dict(journaled.base_result)
        except (KeyError, TypeError, ValueError):
            base_partial = None
    return completed, base_partial


def _run_one(
    store: ResultStore,
    scheduler: Scheduler,
    telemetry: _Telemetry,
    log: Callable[[str], None],
    draining: threading.Event,
    key: str,
    spec: JobSpec,
    submit: Callable[[], str],
) -> bool:
    """Submit one job and poll it to completion (or until a drain).

    Returns True when the job reached a terminal state (success or
    failure: counted as processed, dequeued).  Returns False when a drain
    interrupted the wait — the job stays journal-incomplete and spooled,
    exactly the state ``serve --resume`` restarts from.
    """
    telemetry.job_started(key, spec)
    try:
        submit()
    except SchedulerError as error:
        log(f"[serve] job {key[:16]}… FAILED: {error}")
        telemetry.job_finished(key, error=str(error))
        store.delete_queued(key)
        return True
    while True:
        # Short poll instead of a blocking wait so SIGTERM/SIGINT (whose
        # handlers only set the drain event) interrupt promptly.
        try:
            result = scheduler.result(key, timeout=0.2)
        except TimeoutError:
            if draining.is_set():
                return False
            continue
        except SchedulerError as error:
            log(f"[serve] job {key[:16]}… FAILED: {error}")
            telemetry.job_finished(key, error=str(error))
            store.delete_queued(key)
            return True
        break
    if result.method == "exact":
        log(
            f"[serve] job {key[:16]}… done: exact density-matrix pass "
            f"in {result.elapsed_seconds:.3f} s"
        )
    else:
        log(
            f"[serve] job {key[:16]}… done: "
            f"{result.completed_trajectories}/{spec.trajectories} "
            f"trajectories in {result.elapsed_seconds:.3f} s"
        )
    decision = scheduler.decision_for(key)
    if decision is not None:
        log(f"[serve] job {key[:16]}… {decision.render()}")
    telemetry.job_finished(key, result=result, decision=decision)
    store.delete_queued(key)
    return True


def _resume_incomplete(
    store: ResultStore,
    scheduler: Scheduler,
    journal: JobJournal,
    telemetry: _Telemetry,
    log: Callable[[str], None],
    draining: threading.Event,
) -> int:
    """Re-enqueue and run every journal-incomplete job; returns count run."""
    processed = 0
    for journaled in journal.incomplete_jobs():
        if draining.is_set():
            break
        if journaled.spec_dict is None:
            continue  # torn before the submit record — nothing to restore
        try:
            spec = JobSpec.from_dict(journaled.spec_dict)
        except (KeyError, TypeError, ValueError) as error:
            log(
                f"[serve] journal entry {journaled.key[:16]}… has an "
                f"unusable spec ({error}); skipping"
            )
            continue
        key = journaled.key
        completed, base_partial = _restore_chunk_results(journaled)
        if journaled.plan:
            log(
                f"[serve] resuming job {key[:16]}… "
                f"({len(completed)}/{len(journaled.plan)} chunks already "
                f"committed)"
            )
            telemetry.emit(
                "job.resume", job=key,
                completed_chunks=len(completed),
                planned_chunks=len(journaled.plan),
            )
            submit = lambda: scheduler.submit_resumed(  # noqa: E731
                spec,
                journaled.plan,
                completed,
                base_spans=journaled.base_spans,
                base_partial=base_partial,
                token_base=journaled.max_token + 1,
            )
        else:
            # Submitted but never planned: an ordinary resubmission (the
            # checkpoint path inside submit() still applies if one exists).
            log(f"[serve] re-running unplanned job {key[:16]}…")
            submit = lambda: scheduler.submit(spec)  # noqa: E731
        if _run_one(store, scheduler, telemetry, log, draining, key, spec, submit):
            processed += 1
    return processed


def serve(
    store: ResultStore,
    workers: int = 2,
    once: bool = False,
    poll_interval: float = 0.5,
    chunk_size: Optional[int] = None,
    max_retries: int = 2,
    max_jobs: Optional[int] = None,
    log: Callable[[str], None] = print,
    metrics_port: Optional[int] = None,
    events_log: Optional[str] = None,
    trace_dir: Optional[str] = None,
    heartbeat_interval: float = 1.0,
    resume: bool = False,
    drain_timeout: float = 10.0,
    lease_duration: float = 30.0,
    install_signal_handlers: bool = True,
) -> int:
    """Process queued jobs until the queue stays empty (``once``) or forever.

    Returns the number of jobs executed.  Jobs that fail (retry budget
    exhausted) are logged and dequeued so one poisoned spec cannot wedge
    the queue; their partial checkpoints remain for post-mortem or resume.

    Durability (docs/ROBUSTNESS.md, "Durability & restart semantics"):
    stores with an on-disk directory get a write-ahead job journal — every
    submission, chunk plan, lease, committed chunk result, and completion
    is journaled with fsync, so a hard death (``kill -9``) loses at most
    uncommitted chunk work.  ``resume=True`` replays the journal on
    startup and re-enqueues every incomplete job with its *original*
    chunk plan, producing results bit-identical to an uninterrupted run.
    SIGTERM/SIGINT trigger a graceful drain: stop admitting work, let
    in-flight chunks land (bounded by ``drain_timeout`` seconds),
    checkpoint the rest, flush journal/metrics/events, and return
    normally (exit 0); a second signal exits immediately.

    Telemetry (all optional, see docs/OBSERVABILITY.md):

    * ``metrics_port`` — serve OpenMetrics text on ``GET /metrics`` at
      that port (0 binds an ephemeral one; the ``serve.start`` event and
      the startup log line carry the actual bound port), including live
      per-property estimate means and Hoeffding half-widths.
    * ``events_log`` — append JSONL telemetry events (job transitions
      plus a periodic heartbeat every ``heartbeat_interval`` seconds),
      fsync'd per record so the log survives a crash torn at worst.
    * ``trace_dir`` — write a Chrome ``trace_event`` JSON file per
      completed job, stitched from the job's cross-process spans.
    """
    processed = 0
    journal: Optional[JobJournal] = None
    ledger: Optional[RunLedger] = None
    if store.directory is not None:
        journal = JobJournal(journal_path(store.directory))
        # The run ledger lives beside the journal: the journal makes work
        # resumable, the ledger makes its cost observable — and feeds the
        # measured dispatch model for every later job of the same family.
        ledger = RunLedger(ledger_path(store.directory))
    draining = threading.Event()

    def _on_signal(signum: int, _frame) -> None:
        if draining.is_set():
            os._exit(128 + signum)  # second signal: immediate exit
        draining.set()

    restore: List[Tuple[int, object]] = []
    if install_signal_handlers:
        try:
            for signum in (signal.SIGTERM, signal.SIGINT):
                restore.append((signum, signal.signal(signum, _on_signal)))
        except ValueError:
            restore = []  # not the main thread (embedded/test use)
    try:
        with Scheduler(
            workers=workers,
            store=store,
            chunk_size=chunk_size,
            max_retries=max_retries,
            journal=journal,
            ledger=ledger,
            lease_duration=lease_duration,
        ) as scheduler, _Telemetry(
            store, scheduler, metrics_port, events_log, trace_dir,
            heartbeat_interval, log,
        ) as telemetry:
            telemetry.emit(
                "serve.start",
                pid=os.getpid(),
                resume=resume,
                journal=None if journal is None else journal.path,
                metrics_port=(
                    None if telemetry.exporter is None else telemetry.exporter.port
                ),
            )
            if resume and journal is not None:
                processed += _resume_incomplete(
                    store, scheduler, journal, telemetry, log, draining
                )
                if max_jobs is not None and processed >= max_jobs:
                    telemetry.emit(
                        "serve.stop",
                        processed=processed,
                        counters=telemetry.snapshot().get("counters", {}),
                    )
                    return processed
            while not draining.is_set():
                keys = list_queue(store)
                if not keys:
                    if once:
                        break
                    draining.wait(poll_interval)
                    continue
                for key in keys:
                    if draining.is_set():
                        break
                    spec = _dequeue(store, key)
                    if spec is None:
                        log(f"[serve] dropping unreadable queue entry {key[:16]}…")
                        store.delete_queued(key)
                        continue
                    log(
                        f"[serve] job {key[:16]}… ({spec.circuit.name}, "
                        f"M={spec.trajectories}, backend={spec.backend_kind}, "
                        f"method={spec.method})"
                    )
                    if _run_one(
                        store, scheduler, telemetry, log, draining, key, spec,
                        lambda spec=spec: scheduler.submit(spec),
                    ):
                        processed += 1
                    if max_jobs is not None and processed >= max_jobs:
                        telemetry.emit(
                            "serve.stop",
                            processed=processed,
                            counters=telemetry.snapshot().get("counters", {}),
                        )
                        return processed
            if draining.is_set():
                clean = scheduler.drain(drain_timeout)
                telemetry.emit("serve.drain", clean=clean, processed=processed)
                log(
                    f"[serve] drained ({'clean' if clean else 'forced'}) "
                    f"after signal; exiting"
                )
            telemetry.emit(
                "serve.stop",
                processed=processed,
                counters=telemetry.snapshot().get("counters", {}),
            )
    finally:
        for signum, previous in restore:
            try:
                signal.signal(signum, previous)
            except (ValueError, TypeError):
                pass
        if journal is not None:
            journal.close()
        if ledger is not None:
            ledger.close()
    return processed
