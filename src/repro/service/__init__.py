"""Persistent simulation job service (scheduling, caching, batch serving).

The service layer turns the one-shot Monte-Carlo runner into infrastructure
that can accept, queue, resume, and cache simulation work:

* :mod:`~repro.service.job` — content-addressed :class:`JobSpec` and the
  job lifecycle model;
* :mod:`~repro.service.scheduler` — sharded dispatch onto a persistent
  warm worker pool with streaming aggregation and fault tolerance;
* :mod:`~repro.service.store` — in-memory-LRU + on-disk result cache and
  checkpoint store;
* :mod:`~repro.service.serve` — the spool-directory batch runner behind
  ``repro submit`` / ``repro serve`` / ``repro status`` / ``repro result``.

See docs/SERVICE.md for the architecture walk-through.
"""

from .job import JobSpec, JobState, JobStatus, StreamingEstimate
from .journal import JOURNAL_SCHEMA, JobJournal, JournalJob, journal_path, replay_journal
from .scheduler import (
    JobCancelledError,
    JobFailedError,
    PoisonChunkError,
    Scheduler,
    SchedulerError,
    WorkerPoolBrokenError,
)
from .serve import enqueue_job, list_jobs, list_queue, query_status, serve
from .store import STORE_SCHEMA, ResultStore, default_store_directory

__all__ = [
    "JOURNAL_SCHEMA",
    "JobCancelledError",
    "JobFailedError",
    "JobJournal",
    "JobSpec",
    "JobState",
    "JobStatus",
    "JournalJob",
    "PoisonChunkError",
    "ResultStore",
    "STORE_SCHEMA",
    "Scheduler",
    "SchedulerError",
    "StreamingEstimate",
    "WorkerPoolBrokenError",
    "default_store_directory",
    "enqueue_job",
    "journal_path",
    "list_jobs",
    "list_queue",
    "query_status",
    "replay_journal",
    "serve",
]
