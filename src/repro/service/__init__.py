"""Persistent simulation job service (scheduling, caching, batch serving).

The service layer turns the one-shot Monte-Carlo runner into infrastructure
that can accept, queue, resume, and cache simulation work:

* :mod:`~repro.service.job` — content-addressed :class:`JobSpec` and the
  job lifecycle model;
* :mod:`~repro.service.scheduler` — sharded dispatch onto a persistent
  warm worker pool with streaming aggregation and fault tolerance;
* :mod:`~repro.service.store` — in-memory-LRU + on-disk result cache and
  checkpoint store;
* :mod:`~repro.service.serve` — the spool-directory batch runner behind
  ``repro submit`` / ``repro serve`` / ``repro status`` / ``repro result``.

See docs/SERVICE.md for the architecture walk-through.
"""

from .job import JobSpec, JobState, JobStatus, StreamingEstimate
from .scheduler import (
    JobCancelledError,
    JobFailedError,
    Scheduler,
    SchedulerError,
)
from .serve import enqueue_job, list_queue, query_status, serve
from .store import ResultStore, default_store_directory

__all__ = [
    "JobCancelledError",
    "JobFailedError",
    "JobSpec",
    "JobState",
    "JobStatus",
    "ResultStore",
    "Scheduler",
    "SchedulerError",
    "StreamingEstimate",
    "default_store_directory",
    "enqueue_job",
    "list_queue",
    "query_status",
    "serve",
]
