"""Exact density-matrix simulation on decision diagrams (``repro.exact``).

The counterpart to :mod:`repro.stochastic`: instead of Monte-Carlo
trajectory sampling with Hoeffding error bars, this package evolves the
density matrix itself as a matrix DD (Grurl et al., arXiv 2012.05629) and
reads every property off the diagram exactly — zero sampling error, one
pass.  The scheduler's hybrid dispatcher (see ``docs/EXACT.md``) uses the
:mod:`~repro.exact.cost` model to route each job to whichever side of the
exponential trade-off is cheaper, and falls back to stochastic sampling if
the rho DD outgrows its node ceiling mid-flight.
"""

from .backend import DensityDDBackend
from .cost import (
    DispatchDecision,
    MEASURED_COST_ENV,
    MeasuredCostModel,
    SizeEvidence,
    estimate_costs,
    exact_unsupported_reason,
    measured_cost_enabled,
    static_clean_probability,
    stochastic_budget,
)
from .simulator import ExactSimulator, default_node_ceiling, simulate_exact

__all__ = [
    "DensityDDBackend",
    "DispatchDecision",
    "ExactSimulator",
    "MEASURED_COST_ENV",
    "MeasuredCostModel",
    "SizeEvidence",
    "default_node_ceiling",
    "estimate_costs",
    "exact_unsupported_reason",
    "measured_cost_enabled",
    "simulate_exact",
    "static_clean_probability",
    "stochastic_budget",
]
