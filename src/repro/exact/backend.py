"""Density-matrix decision-diagram backend — exact mixed states on DDs.

The dense oracle (:class:`~repro.simulators.density_matrix.DensityMatrixSimulator`)
stores ``rho`` as a full ``2**n x 2**n`` array and dies at its 13-qubit
memory cap.  Following Viamontes/Markov/Hayes (quant-ph/0403114) and Grurl
et al. (arXiv 2012.05629), this backend stores ``rho`` as a *matrix* decision
diagram in an ordinary :class:`~repro.dd.package.DDPackage` — the same
unique/compute/complex tables, refcounted GC, and observability counters the
vector simulator uses; nothing about the engine knows it is holding a
density matrix rather than a gate.

Evolution is superoperator application by DD arithmetic:

* a gate is ``rho -> U rho U^dagger`` — two matrix-matrix multiplies with
  the ``(U, U^dagger)`` operator-DD pair the extended gate plan caches;
* a noise channel is the exact Kraus sum ``rho -> sum_k K_k rho K_k^dagger``
  — two multiplies per Kraus term, accumulated with DD addition (counted
  as ``exact.kraus_applications``);
* readout is structural: a basis probability is one root-to-terminal walk
  along the diagonal, a marginal or Pauli expectation is one multiply plus
  a trace, and every property is *exact* — no shots, no Hoeffding interval.

Memory is governed by the diagram size of ``rho``, not ``4**n``; the
``node_ceiling`` argument turns runaway growth into a
:class:`~repro.errors.ResourceLimitError` that the hybrid scheduler catches
to fall back to stochastic sampling mid-flight.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..dd.edge import Edge
from ..dd.package import PROJ_ONE, PROJ_ZERO, DDPackage
from ..errors import ResourceLimitError
from ..noise.channels import DEPOLARIZING_PAULIS
from ..obs.metrics import NODE_BUCKETS
from ..simulators.ddsim import _pauli_operator_dd
from ..simulators.gateplan import NoiseOperatorCache

__all__ = ["DensityDDBackend"]

#: Kraus operators of the trace-out-and-reprepare reset channel.
_RESET_KRAUS = (
    np.array([[1, 0], [0, 0]], dtype=complex),
    np.array([[0, 1], [0, 0]], dtype=complex),
)

#: Projector pair of the non-selective (dephasing) measurement channel.
_MEASURE_PROJECTORS = (PROJ_ZERO, PROJ_ONE)


class DensityDDBackend:
    """Exact density-matrix simulator state on a decision-diagram package.

    The object owns one pinned matrix-DD root edge (``rho``) plus the
    operator caches needed to evolve it.  It deliberately mirrors the
    :class:`~repro.simulators.ddsim.DDBackend` property surface
    (``probability_of_basis`` / ``probability_of_one`` /
    ``pauli_expectation`` / ``fidelity``) so the stochastic runner's
    :class:`PropertySpec` objects evaluate against it unchanged.
    """

    def __init__(
        self,
        num_qubits: int,
        package: Optional[DDPackage] = None,
        node_ceiling: Optional[int] = None,
    ) -> None:
        if num_qubits < 1:
            raise ValueError("num_qubits must be >= 1")
        self.num_qubits = num_qubits
        self.package = package if package is not None else DDPackage(num_qubits)
        #: Optional rho-DD node budget; exceeded => ResourceLimitError
        #: (the hybrid scheduler's fallback signal).
        self.node_ceiling = node_ceiling
        rho = self._initial_rho()
        self._rho = self.package.inc_ref(rho)
        self.peak_nodes = self.package.node_count(rho)
        metrics = self.package.metrics
        self._kraus_counter = metrics.counter("exact.kraus_applications")
        self._superop_counter = metrics.counter("exact.superop_applications")
        self._peak_gauge = metrics.gauge("exact.peak_rho_nodes")
        self._peak_gauge.max(float(self.peak_nodes))
        self._nodes_hist = metrics.histogram("exact.rho_nodes", NODE_BUCKETS)
        #: Shared (K, K^dagger) operator-DD cache — same structure the
        #: stochastic error applier uses, extended with adjoint pairs.
        self.noise_ops = NoiseOperatorCache(self.package, num_qubits)
        #: Pinned composite two-qubit Pauli operators per crosstalk pair.
        self._crosstalk_ops: Dict[Tuple[int, int], Tuple[Edge, ...]] = {}
        #: Pinned single-qubit |1><1| projector DDs for marginals.
        self._one_projectors: Dict[int, Edge] = {}

    # ------------------------------------------------------------------
    # State management
    # ------------------------------------------------------------------

    def _initial_rho(self) -> Edge:
        """Matrix DD of ``|0...0><0...0|`` (top-left corner of every level)."""
        package = self.package
        zero = package.zero_edge
        edge = package.one_edge
        for var in range(self.num_qubits - 1, -1, -1):
            edge = package.make_matrix_node(var, (edge, zero, zero, zero))
        return edge

    @property
    def rho(self) -> Edge:
        """The current density matrix's root edge."""
        return self._rho

    def _replace_rho(self, new_rho: Edge) -> None:
        """Swap in a new rho edge with reference accounting + growth checks."""
        package = self.package
        package.inc_ref(new_rho)
        package.dec_ref(self._rho)
        self._rho = new_rho
        package.garbage_collect()
        nodes = package.node_count(new_rho)
        self._nodes_hist.observe(float(nodes))
        if nodes > self.peak_nodes:
            self.peak_nodes = nodes
            self._peak_gauge.max(float(nodes))
        if self.node_ceiling is not None and nodes > self.node_ceiling:
            raise ResourceLimitError(
                f"exact rho-DD grew to {nodes} nodes, past the configured "
                f"ceiling of {self.node_ceiling} — the mixed state has too "
                f"little structure for an exact DD; fall back to stochastic "
                f"trajectory sampling",
                qubits=self.num_qubits,
                nodes=nodes,
                ceiling=self.node_ceiling,
            )

    def release(self) -> None:
        """Drop the rho reference (end of backend life)."""
        self.package.dec_ref(self._rho)

    # ------------------------------------------------------------------
    # Superoperator application
    # ------------------------------------------------------------------

    def apply_operator_pair(self, operator: Edge, adjoint: Edge) -> None:
        """Conjugation ``rho -> A rho A^dagger`` from a resolved DD pair."""
        package = self.package
        self._replace_rho(
            package.multiply_matrices(
                operator, package.multiply_matrices(self._rho, adjoint)
            )
        )

    def apply_gate(self, matrix: np.ndarray, target: int, controls) -> None:
        """Unitary conjugation from a raw matrix (uncompiled path)."""
        package = self.package
        matrix = np.asarray(matrix, dtype=complex)
        gate = package.gate(matrix, target, controls, self.num_qubits)
        adjoint = package.gate(
            np.ascontiguousarray(matrix.conj().T), target, controls, self.num_qubits
        )
        self.apply_operator_pair(gate, adjoint)

    def apply_channel_pairs(self, pairs: Sequence[Tuple[Edge, Edge]]) -> None:
        """Exact Kraus sum ``rho -> sum_k K_k rho K_k^dagger``.

        ``pairs`` are resolved ``(K, K^dagger)`` operator-DD pairs; each term
        costs two matrix-matrix multiplies, accumulated with DD addition.
        """
        package = self.package
        total = package.zero_edge
        for operator, adjoint in pairs:
            term = package.multiply_matrices(
                operator, package.multiply_matrices(self._rho, adjoint)
            )
            total = package.add(total, term)
            self._kraus_counter.inc()
        self._replace_rho(total)

    def apply_channel(self, kraus_operators: Sequence[np.ndarray], qubit: int, name: str) -> None:
        """Single-qubit channel from raw Kraus matrices (cached under ``name``)."""
        pairs = self.noise_ops.kraus_pairs_with_adjoints(name, kraus_operators, qubit)
        self.apply_channel_pairs(pairs)

    def apply_single_qubit_superop(
        self, superop: np.ndarray, qubit: int, kraus_terms: int = 0
    ) -> None:
        """Apply a single-qubit channel as its ``4 x 4`` superoperator matrix.

        ``superop`` is the channel's Liouville form ``sum_k K_k (x) K_k*``
        (row index ``i*2+j`` addresses the output block ``|i><j|`` of the
        target qubit).  Because a single-qubit channel only mixes the four
        quadrants *at the target's level*, it can be applied in **one**
        memoised traversal of rho: nodes above the target are rebuilt
        structurally, and each node at the target's level gets its quadrant
        sub-DDs recombined with scalar weights — replacing the
        ``2 * rank`` matrix-matrix multiplies of the generic Kraus-pair
        path.  This is what makes exact simulation of the deeper paper
        circuits tractable in this pure-Python engine.

        ``kraus_terms`` records how many Kraus operators the superoperator
        folds together (for the ``exact.kraus_applications`` counter).
        """
        if not 0 <= qubit < self.num_qubits:
            raise ValueError(f"qubit {qubit} out of range")
        superop = np.asarray(superop, dtype=complex)
        if superop.shape != (4, 4):
            raise ValueError(f"superoperator must be 4x4, got {superop.shape}")
        package = self.package
        ct = package.complex_table
        coefficients = [
            [complex(superop[row, col]) for col in range(4)] for row in range(4)
        ]
        memo: Dict[int, Edge] = {}

        def rebuild_node(node) -> Edge:
            cached = memo.get(id(node))
            if cached is not None:
                return cached
            if node.is_terminal:
                raise ValueError("malformed matrix DD: early terminal")
            if node.var == qubit:
                old = node.edges
                children = []
                for row in coefficients:
                    total = package.zero_edge
                    for coefficient, child in zip(row, old):
                        if coefficient == 0.0 or child.weight.is_zero():
                            continue
                        total = package.add(total, package.scale(child, coefficient))
                    children.append(total)
                result = package.make_matrix_node(qubit, tuple(children))
            else:
                result = package.make_matrix_node(
                    node.var, tuple(rebuild_edge(child) for child in node.edges)
                )
            memo[id(node)] = result
            return result

        def rebuild_edge(edge: Edge) -> Edge:
            if edge.weight.is_zero():
                return package.zero_edge
            return rebuild_node(edge.node).weighted(ct, edge.weight)

        if kraus_terms:
            self._kraus_counter.inc(kraus_terms)
        self._superop_counter.inc()
        self._replace_rho(rebuild_edge(self._rho))

    def _crosstalk_operators(self, qubit_a: int, qubit_b: int) -> Tuple[Edge, ...]:
        """The 16 composite ``P_i (x) P_j`` operator DDs for one qubit pair.

        Paulis are Hermitian, so each composite is its own adjoint and the
        channel terms are ``O rho O``.  The products are pinned and reused
        across every crosstalk firing on the same pair.
        """
        key = (qubit_a, qubit_b)
        cached = self._crosstalk_ops.get(key)
        if cached is not None:
            return cached
        package = self.package
        operators = []
        for i, first in enumerate(DEPOLARIZING_PAULIS):
            left = self.noise_ops.operator(("exact:xtalk", i, qubit_a), first)
            for j, second in enumerate(DEPOLARIZING_PAULIS):
                right = self.noise_ops.operator(("exact:xtalk", j, qubit_b), second)
                operators.append(
                    package.inc_ref(package.multiply_matrices(left, right))
                )
        cached = tuple(operators)
        self._crosstalk_ops[key] = cached
        return cached

    def apply_crosstalk(self, probability: float, qubit_a: int, qubit_b: int) -> None:
        """Correlated two-qubit Pauli channel (the crosstalk mechanism).

        ``rho -> (1 - p) rho + (p/16) sum_{i,j} (P_i (x) P_j) rho (...)``,
        exactly matching the dense oracle's
        :meth:`~repro.simulators.density_matrix.DensityMatrixSimulator.apply_correlated_pauli_channel`.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError("crosstalk probability must lie in [0, 1]")
        if probability == 0.0:
            return
        package = self.package
        original = self._rho
        total = package.scale(original, 1.0 - probability)
        weight = probability / 16.0
        for operator in self._crosstalk_operators(qubit_a, qubit_b):
            term = package.multiply_matrices(
                operator, package.multiply_matrices(original, operator)
            )
            total = package.add(total, package.scale(term, weight))
            self._kraus_counter.inc()
        self._replace_rho(total)

    # ------------------------------------------------------------------
    # Non-unitary circuit operations (deterministic ensemble semantics)
    # ------------------------------------------------------------------

    def dephase_measure(self, qubit: int) -> None:
        """Non-selective measurement: kill the coherences of ``qubit``."""
        self.apply_channel(_MEASURE_PROJECTORS, qubit, "exact:dephase")

    def reset_qubit(self, qubit: int) -> None:
        """Trace-out-and-reprepare reset channel."""
        self.apply_channel(_RESET_KRAUS, qubit, "exact:reset")

    # ------------------------------------------------------------------
    # Exact property readout
    # ------------------------------------------------------------------

    def trace(self) -> float:
        """``Tr(rho)`` — one diagonal walk, memoised per node."""
        return self._trace_of(self._rho)

    def _trace_of(self, edge: Edge) -> float:
        # Memoised per call: node identities are only stable between GCs.
        memo: Dict[int, complex] = {}

        def node_trace(node) -> complex:
            if node.is_terminal:
                return 1.0 + 0.0j
            cached = memo.get(id(node))
            if cached is not None:
                return cached
            total = 0.0 + 0.0j
            for b in (0, 1):
                child = node.edges[3 * b]
                if child.weight.is_zero():
                    continue
                total += child.weight.value * node_trace(child.node)
            memo[id(node)] = total
            return total

        if edge.weight.is_zero():
            return 0.0
        return float((edge.weight.value * node_trace(edge.node)).real)

    def probability_of_basis(self, bits: Sequence[int]) -> float:
        """``<b|rho|b>`` — a single root-to-terminal walk on the diagonal."""
        bits = [int(b) for b in bits]
        if len(bits) != self.num_qubits:
            raise ValueError(
                f"basis label must have {self.num_qubits} bits, got {len(bits)}"
            )
        edge = self._rho
        value = edge.weight.value
        node = edge.node
        for bit in bits:
            if node.is_terminal:
                raise ValueError("malformed matrix DD: early terminal")
            child = node.edges[3 * bit]
            if child.weight.is_zero():
                return 0.0
            value *= child.weight.value
            node = child.node
        return float(value.real)

    def _one_projector(self, qubit: int) -> Edge:
        projector = self._one_projectors.get(qubit)
        if projector is None:
            projector = self.package.gate(PROJ_ONE, qubit, None, self.num_qubits)
            self._one_projectors[qubit] = projector
        return projector

    def probability_of_one(self, qubit: int) -> float:
        """Marginal ``P(qubit = 1) = Tr(|1><1|_q rho)``."""
        product = self.package.multiply_matrices(self._one_projector(qubit), self._rho)
        return self._trace_of(product)

    def pauli_expectation(self, pauli: str) -> float:
        """``Tr(P rho)`` for a Pauli string (qubit 0 leftmost)."""
        operator = _pauli_operator_dd(self.package, pauli, self.num_qubits)
        product = self.package.multiply_matrices(operator, self._rho)
        return self._trace_of(product)

    def fidelity(self, handle: Edge) -> float:
        """``<psi| rho |psi>`` against a pinned pure-state vector DD."""
        transformed = self.package.multiply(self._rho, handle)
        return float(self.package.inner_product(handle, transformed).real)

    def purity(self) -> float:
        """``Tr(rho^2)`` — 1 for pure states, ``1/2**n`` for maximally mixed."""
        product = self.package.multiply_matrices(self._rho, self._rho)
        return self._trace_of(product)

    def to_density_matrix(self) -> np.ndarray:
        """Dense expansion of rho (exponential; tests and oracles only)."""
        return self.package.to_operator_matrix(self._rho, self.num_qubits)

    def current_nodes(self) -> int:
        """Node count of the current rho decision diagram."""
        return self.package.node_count(self._rho)
