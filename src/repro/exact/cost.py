"""Exact-vs-stochastic cost model for the hybrid dispatcher.

The paper's core trade-off: exact mixed-state simulation works on a
``2**n x 2**n`` object (super-linear in ``4**n`` dense, diagram-size-bound
on DDs) but needs *one* pass, while stochastic sampling works on ``2**n``
state vectors but needs ``M`` trajectory passes sized by the Theorem 1
Hoeffding contract.  This module turns that trade-off into a deterministic
per-:class:`~repro.service.job.JobSpec` routing decision.

Both sides are scored in the same abstract unit — "operator applications
times worst-case representation size":

* **exact**: every gate costs two matrix-matrix multiplies, every noise
  channel two per Kraus rank (paper-noise total ``R ~ 8`` ranks per touched
  qubit), crosstalk 32 per pair, all on a rho of worst-case size ``4**n``;
* **stochastic**: ``M`` trajectories each replay the circuit's operations
  on a vector of worst-case size ``2**n`` (noise firings are rare at paper
  rates and do not change the order).

The ratio reduces to ``exact wins iff 2 * (1 + R) * 2**n < M`` — with the
paper's M = 30 000 budget and full paper noise, exact wins up to ~10-11
qubits and loses beyond, exactly the regime split ROADMAP calls for.  The
model is deliberately *dense* (worst-case) about representation size: a
structured rho can beat it by orders of magnitude, which is what the
mid-flight node-ceiling fallback is for — the cost model only has to pick
the right side of the exponential, not predict diagram sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..circuits.circuit import QuantumCircuit
from ..circuits.operations import (
    BarrierOperation,
    GateOperation,
    MeasureOperation,
    ResetOperation,
)
from ..noise.model import NoiseModel
from ..stochastic.properties import ClassicalOutcome, PropertySpec

__all__ = ["DispatchDecision", "estimate_costs", "exact_unsupported_reason"]


@dataclass(frozen=True)
class DispatchDecision:
    """Outcome of the cost comparison for one job."""

    #: The routed method: ``"exact"`` or ``"stochastic"``.
    method: str
    #: Abstract cost scores (same unit on both sides; see module docstring).
    exact_cost: float
    stochastic_cost: float
    #: Superoperator multiplies one exact pass performs.
    exact_multiplies: int
    #: Why exact was ruled out structurally, if it was (cost ignored then).
    unsupported_reason: Optional[str] = None

    def render(self) -> str:
        """One-line human-readable explanation (CLI ``--method auto``)."""
        if self.unsupported_reason is not None:
            return f"dispatch: stochastic (exact unsupported: {self.unsupported_reason})"
        return (
            f"dispatch: {self.method} "
            f"(exact cost {self.exact_cost:.3g} vs stochastic {self.stochastic_cost:.3g}, "
            f"{self.exact_multiplies} superoperator multiplies)"
        )


def exact_unsupported_reason(
    circuit: QuantumCircuit, properties: Sequence[PropertySpec]
) -> Optional[str]:
    """Structural reason the exact path cannot run this job, or ``None``.

    The ensemble (density-matrix) picture has no per-shot classical record:
    classically conditioned gates and :class:`ClassicalOutcome` properties
    are trajectory-only concepts.
    """
    for spec in properties:
        if isinstance(spec, ClassicalOutcome):
            return (
                f"property {spec.name} reads the per-trajectory classical "
                f"record, which the ensemble picture does not have"
            )
    for operation in circuit:
        if isinstance(operation, GateOperation) and operation.condition is not None:
            return (
                "circuit contains classically conditioned gates; the "
                "ensemble picture has no classical record to condition on"
            )
    return None


def _channel_multiplies(rates, noisy: bool) -> int:
    """Superoperator multiplies of one qubit's post-gate channel stack.

    Two multiplies per Kraus term: depolarizing has rank 4, amplitude
    damping and phase flip rank 2 each — the full paper stack is ``R = 8``
    ranks, 16 multiplies.
    """
    if not noisy:
        return 0
    multiplies = 0
    if rates.depolarizing > 0.0:
        multiplies += 2 * 4
    if rates.amplitude_damping > 0.0:
        multiplies += 2 * 2
    if rates.phase_flip > 0.0:
        multiplies += 2 * 2
    return multiplies


def count_exact_multiplies(circuit: QuantumCircuit, model: Optional[NoiseModel]) -> int:
    """Matrix-matrix multiplies one exact pass over ``circuit`` performs."""
    multiplies = 0
    for operation in circuit:
        if isinstance(operation, BarrierOperation):
            continue
        if isinstance(operation, MeasureOperation):
            multiplies += 2 * 2  # dephasing projector pair
            if model is not None:
                rates = model.rates_for("measure", operation.qubit)
                if rates.readout > 0.0:
                    multiplies += 2 * 2
                multiplies += _channel_multiplies(rates, model.noisy_measure)
            continue
        if isinstance(operation, ResetOperation):
            multiplies += 2 * 2  # reset Kraus pair
            if model is not None:
                rates = model.rates_for("reset", operation.qubit)
                multiplies += _channel_multiplies(rates, model.noisy_measure)
            continue
        assert isinstance(operation, GateOperation)
        multiplies += 2  # U rho U^dagger
        if model is None:
            continue
        for qubit in operation.qubits:
            multiplies += _channel_multiplies(
                model.rates_for(operation.name, qubit), True
            )
        touched = operation.qubits
        for pair in zip(touched, touched[1:]):
            if model.rates_for(operation.name, pair[1]).crosstalk > 0.0:
                multiplies += 2 * 16
    return multiplies


def estimate_costs(
    circuit: QuantumCircuit,
    model: Optional[NoiseModel],
    properties: Sequence[PropertySpec],
    trajectories: int,
) -> DispatchDecision:
    """Score both methods and pick the cheaper one.

    ``trajectories`` is the job's epsilon/delta contract proxy — callers
    size it through :func:`~repro.stochastic.properties.hoeffding_samples`,
    so it carries the accuracy demand into the comparison.
    """
    reason = exact_unsupported_reason(circuit, properties)
    exact_multiplies = count_exact_multiplies(circuit, model)
    # Worst-case representation sizes: rho is 2^n x 2^n, a trajectory
    # state is 2^n.  Operation counts: one exact pass does
    # ``exact_multiplies`` matrix products; M trajectories replay the
    # circuit's operation schedule (one matrix-vector product per op).
    num_ops = max(1, len(circuit.operations))
    exact_cost = float(exact_multiplies) * float(4**circuit.num_qubits)
    stochastic_cost = (
        float(max(1, trajectories)) * float(num_ops) * float(2**circuit.num_qubits)
    )
    if reason is not None:
        method = "stochastic"
    else:
        method = "exact" if exact_cost < stochastic_cost else "stochastic"
    return DispatchDecision(
        method=method,
        exact_cost=exact_cost,
        stochastic_cost=stochastic_cost,
        exact_multiplies=exact_multiplies,
        unsupported_reason=reason,
    )
