"""Exact-vs-stochastic cost model for the hybrid dispatcher.

The paper's core trade-off: exact mixed-state simulation works on a
``2**n x 2**n`` object (super-linear in ``4**n`` dense, diagram-size-bound
on DDs) but needs *one* pass, while stochastic sampling works on ``2**n``
state vectors but needs ``M`` trajectory passes sized by the Theorem 1
Hoeffding contract.  This module turns that trade-off into a deterministic
per-:class:`~repro.service.job.JobSpec` routing decision.

Both sides are scored in the same abstract unit — "operator applications
times representation size":

* **exact**: every gate costs two matrix-matrix multiplies, every noise
  channel two per Kraus rank (paper-noise total ``R ~ 8`` ranks per touched
  qubit), crosstalk 32 per pair, all on a rho of worst-case size ``4**n``;
* **stochastic**: the *stratified* trajectory budget
  ``ceil(M * (1 - p_clean)**2)`` (PR 9 — the clean stratum folds
  analytically, only erring-conditioned trajectories replay) times the
  circuit's operation schedule on a vector of worst-case size ``2**n``.
  When stratification is off or inapplicable (measure/reset mid-circuit,
  conditioned gates) the budget degrades to the naive ``M``.

Representation sizes come in two flavours:

* **worst case** — dense ``4**n`` / ``2**n``.  Always available, never
  wrong about the exponential, often wrong by orders of magnitude on
  structured circuits (a GHZ-class rho is ~``4n`` DD nodes, not ``4**n``).
* **measured** — :class:`MeasuredCostModel` replaces the dense sizes with
  peak node counts previously *observed* for the same circuit family in
  the run ledger (:mod:`repro.obs.ledger`).  History is keyed by the
  structural family fingerprint, demands at least ``K`` observations, adds
  a safety headroom, floors at the trivial diagram size, and never exceeds
  the worst case.  Node-ceiling fallbacks are folded in as *censored*
  observations — an exact run that tripped its ceiling proves rho grew at
  least that large, so mispredictions push the measured size back up and
  dispatch learns.  ``REPRO_MEASURED_COST=off`` (or an empty ledger)
  restores the worst-case decisions bit-identically.

The worst-case ratio reduces to ``exact wins iff 2 * (1 + R) * 2**n < M``
— with the paper's M = 30 000 budget and full paper noise, exact wins up
to ~10-11 qubits and loses beyond.  Under the stratified budget the
stochastic side shrinks by ``(1 - p_clean)**2`` (~100x at paper rates), so
worst-case exact essentially never wins — measured rho evidence is what
lets exact keep winning far past the dense boundary, exactly the ROADMAP
feedback loop.  The mid-flight node-ceiling fallback remains the backstop
for the measured model's mistakes: the cost model only has to pick the
right side of the exponential, not perfectly predict diagram sizes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..circuits.circuit import QuantumCircuit
from ..circuits.operations import (
    BarrierOperation,
    GateOperation,
    MeasureOperation,
    ResetOperation,
)
from ..noise.model import NoiseModel
from ..obs.ledger import FamilyAggregate, circuit_fingerprint
from ..stochastic.properties import ClassicalOutcome, PropertySpec
from ..stochastic.strata import (
    MIN_ERRING_MASS,
    stratified_enabled,
    stratified_samples,
)

__all__ = [
    "DispatchDecision",
    "MEASURED_COST_ENV",
    "MeasuredCostModel",
    "SizeEvidence",
    "estimate_costs",
    "exact_unsupported_reason",
    "measured_cost_enabled",
    "static_clean_probability",
    "stochastic_budget",
]

#: Escape hatch: ``REPRO_MEASURED_COST=off`` ignores ledger history and
#: restores worst-case dispatch decisions bit-identically.
MEASURED_COST_ENV = "REPRO_MEASURED_COST"

#: Minimum ledger observations of a family before history overrides the
#: worst case (the "K" confidence floor from the measured-cost contract).
DEFAULT_MIN_OBSERVATIONS = 1

#: Safety multiplier on observed peak node counts — diagrams wobble run to
#: run (noise draws differ), so score with slack before trusting history.
MEASURED_HEADROOM = 2.0


def measured_cost_enabled() -> bool:
    """Whether ledger history may override worst-case sizes (default: on)."""
    raw = os.environ.get(MEASURED_COST_ENV, "").strip().lower()
    return raw not in ("off", "0", "false", "no")


@dataclass(frozen=True)
class SizeEvidence:
    """Representation size for one side of the comparison, with provenance."""

    #: Estimated peak node/entry count of the representation.
    nodes: float
    #: ``"worst_case"`` (dense bound) or ``"measured"`` (ledger history).
    source: str
    #: Ledger observations backing a measured estimate (0 for worst case).
    observations: int = 0
    #: True when the estimate includes node-ceiling fallback records —
    #: lower bounds on how large rho actually grew (run was cut short).
    censored: bool = False


class MeasuredCostModel:
    """Representation-size oracle backed by run-ledger family history.

    ``history`` maps circuit-family fingerprints to
    :class:`~repro.obs.ledger.FamilyAggregate` (as returned by
    :meth:`~repro.obs.ledger.RunLedger.aggregates`).  Each query answers
    with observed peak node counts when the family has at least
    ``min_observations`` relevant runs, padded by ``headroom``, floored at
    the trivial diagram size, and capped at the dense worst case; thin or
    missing history falls back to the worst case.
    """

    def __init__(
        self,
        history: Mapping[str, FamilyAggregate],
        min_observations: int = DEFAULT_MIN_OBSERVATIONS,
        headroom: float = MEASURED_HEADROOM,
    ) -> None:
        self.history = history
        self.min_observations = max(1, min_observations)
        self.headroom = headroom

    def _bounded(self, peak: int, num_qubits: int, worst: float) -> float:
        floored = max(self.headroom * float(peak), float(num_qubits + 1))
        return min(worst, floored)

    def exact_size(self, fingerprint: str, num_qubits: int) -> SizeEvidence:
        """Peak rho-DD size: exact runs plus ceiling-censored fallbacks."""
        worst = float(4**num_qubits)
        aggregate = self.history.get(fingerprint)
        if aggregate is None:
            return SizeEvidence(nodes=worst, source="worst_case")
        observations = aggregate.exact_runs + aggregate.fallbacks
        peak = max(aggregate.exact_peak_nodes, aggregate.fallback_peak_nodes)
        if observations < self.min_observations or peak <= 0:
            return SizeEvidence(nodes=worst, source="worst_case")
        return SizeEvidence(
            nodes=self._bounded(peak, num_qubits, worst),
            source="measured",
            observations=observations,
            censored=aggregate.fallbacks > 0,
        )

    def stochastic_size(self, fingerprint: str, num_qubits: int) -> SizeEvidence:
        """Peak state-DD size over the family's stochastic runs."""
        worst = float(2**num_qubits)
        aggregate = self.history.get(fingerprint)
        if aggregate is None:
            return SizeEvidence(nodes=worst, source="worst_case")
        observations = aggregate.stochastic_runs
        peak = aggregate.state_peak_nodes
        if observations < self.min_observations or peak <= 0:
            return SizeEvidence(nodes=worst, source="worst_case")
        return SizeEvidence(
            nodes=self._bounded(peak, num_qubits, worst),
            source="measured",
            observations=observations,
        )


@dataclass(frozen=True)
class DispatchDecision:
    """Outcome of the cost comparison for one job."""

    #: The routed method: ``"exact"`` or ``"stochastic"``.
    method: str
    #: Abstract cost scores (same unit on both sides; see module docstring).
    exact_cost: float
    stochastic_cost: float
    #: Superoperator multiplies one exact pass performs.
    exact_multiplies: int
    #: Why exact was ruled out structurally, if it was (cost ignored then).
    unsupported_reason: Optional[str] = None
    #: ``"worst_case"`` or ``"measured"`` — whether ledger history entered
    #: the comparison on at least one side.
    evidence: str = "worst_case"
    #: Circuit-family fingerprint the history (if any) was keyed by.
    fingerprint: Optional[str] = None
    #: Representation sizes actually scored with, per side.
    exact_nodes: float = 0.0
    stochastic_nodes: float = 0.0
    #: Ledger observations backing each side (0 = worst case used).
    exact_observations: int = 0
    stochastic_observations: int = 0
    #: Exact-side evidence includes node-ceiling fallbacks (lower bounds).
    censored: bool = False
    #: Trajectory budget the stochastic side was scored with (stratified
    #: ``ceil(M * (1 - p_clean)**2)`` when applicable, else naive ``M``).
    stochastic_budget: int = 0
    #: Static clean-stratum weight used for the budget, when stratifiable.
    p_clean: Optional[float] = None

    def render(self) -> str:
        """One-line human-readable explanation (CLI ``--method auto``)."""
        if self.unsupported_reason is not None:
            return f"dispatch: stochastic (exact unsupported: {self.unsupported_reason})"
        base = (
            f"dispatch: {self.method} "
            f"(exact cost {self.exact_cost:.3g} vs stochastic {self.stochastic_cost:.3g}, "
            f"{self.exact_multiplies} superoperator multiplies)"
        )
        if self.evidence != "measured":
            return base
        parts = []
        if self.exact_observations > 0:
            cite = (
                f"rho ~{self.exact_nodes:.3g} nodes "
                f"over {self.exact_observations} run(s)"
            )
            if self.censored:
                cite += ", ceiling-censored"
            parts.append(cite)
        if self.stochastic_observations > 0:
            parts.append(
                f"state ~{self.stochastic_nodes:.3g} nodes "
                f"over {self.stochastic_observations} run(s)"
            )
        return (
            f"{base} [measured evidence: family {self.fingerprint}, "
            + "; ".join(parts)
            + "]"
        )


def exact_unsupported_reason(
    circuit: QuantumCircuit, properties: Sequence[PropertySpec]
) -> Optional[str]:
    """Structural reason the exact path cannot run this job, or ``None``.

    The ensemble (density-matrix) picture has no per-shot classical record:
    classically conditioned gates and :class:`ClassicalOutcome` properties
    are trajectory-only concepts.
    """
    for spec in properties:
        if isinstance(spec, ClassicalOutcome):
            return (
                f"property {spec.name} reads the per-trajectory classical "
                f"record, which the ensemble picture does not have"
            )
    for operation in circuit:
        if isinstance(operation, GateOperation) and operation.condition is not None:
            return (
                "circuit contains classically conditioned gates; the "
                "ensemble picture has no classical record to condition on"
            )
    return None


def _channel_multiplies(rates, noisy: bool) -> int:
    """Superoperator multiplies of one qubit's post-gate channel stack.

    Two multiplies per Kraus term: depolarizing has rank 4, amplitude
    damping and phase flip rank 2 each — the full paper stack is ``R = 8``
    ranks, 16 multiplies.
    """
    if not noisy:
        return 0
    multiplies = 0
    if rates.depolarizing > 0.0:
        multiplies += 2 * 4
    if rates.amplitude_damping > 0.0:
        multiplies += 2 * 2
    if rates.phase_flip > 0.0:
        multiplies += 2 * 2
    return multiplies


def count_exact_multiplies(circuit: QuantumCircuit, model: Optional[NoiseModel]) -> int:
    """Matrix-matrix multiplies one exact pass over ``circuit`` performs.

    Crosstalk is charged per *adjacent* touched-qubit pair
    (``zip(qubits, qubits[1:])``) at the rate resolved on the pair's second
    qubit, 16 two-qubit Pauli-pair Kraus terms each — exactly the pair
    structure and rate resolution the stochastic applier and the
    :class:`~repro.exact.backend.DensityDDBackend` crosstalk channel share
    (pinned by ``tests/exact/test_cost.py``).
    """
    multiplies = 0
    for operation in circuit:
        if isinstance(operation, BarrierOperation):
            continue
        if isinstance(operation, MeasureOperation):
            multiplies += 2 * 2  # dephasing projector pair
            if model is not None:
                rates = model.rates_for("measure", operation.qubit)
                if rates.readout > 0.0:
                    multiplies += 2 * 2
                multiplies += _channel_multiplies(rates, model.noisy_measure)
            continue
        if isinstance(operation, ResetOperation):
            multiplies += 2 * 2  # reset Kraus pair
            if model is not None:
                rates = model.rates_for("reset", operation.qubit)
                multiplies += _channel_multiplies(rates, model.noisy_measure)
            continue
        assert isinstance(operation, GateOperation)
        multiplies += 2  # U rho U^dagger
        if model is None:
            continue
        for qubit in operation.qubits:
            multiplies += _channel_multiplies(
                model.rates_for(operation.name, qubit), True
            )
        touched = operation.qubits
        for pair in zip(touched, touched[1:]):
            if model.rates_for(operation.name, pair[1]).crosstalk > 0.0:
                multiplies += 2 * 16
    return multiplies


def static_clean_probability(
    circuit: QuantumCircuit, model: Optional[NoiseModel]
) -> Optional[float]:
    """A-priori clean-stratum weight, or ``None`` when not stratifiable.

    Mirrors :func:`~repro.stochastic.strata.site_survival_probability` over
    the whole circuit *statically* — before any state exists — so dispatch
    can size the stratified budget without a dry run.  The one draw it
    cannot know statically is event-mode damping's occupation ``p_one``;
    it assumes the worst case ``p_one = 1``, making this a lower bound on
    the true ``p_clean`` and the resulting budget an upper bound on the
    true stratified cost (the safe direction for routing).

    Returns ``None`` for circuits the prefix-sharing plan cannot stratify:
    mid-circuit measure/reset (the plan stops there) or classically
    conditioned gates (whether they fire is per-trajectory state).
    """
    if model is None or model.is_noiseless:
        return 1.0
    exact_damping = model.damping_mode == "exact"
    survival = 1.0
    for operation in circuit:
        if isinstance(operation, BarrierOperation):
            continue
        if isinstance(operation, (MeasureOperation, ResetOperation)):
            return None
        assert isinstance(operation, GateOperation)
        if operation.condition is not None:
            return None
        for qubit in operation.qubits:
            rates = model.rates_for(operation.name, qubit)
            if rates.depolarizing > 0.0:
                survival *= 1.0 - 0.75 * rates.depolarizing
            if rates.amplitude_damping > 0.0:
                if exact_damping:
                    return 0.0
                survival *= 1.0 - rates.amplitude_damping  # p_one = 1
            if rates.phase_flip > 0.0:
                survival *= 1.0 - rates.phase_flip
        touched = operation.qubits
        for pair in zip(touched, touched[1:]):
            crosstalk = model.rates_for(operation.name, pair[1]).crosstalk
            if crosstalk > 0.0:
                survival *= 1.0 - 0.9375 * crosstalk
    return survival


def stochastic_budget(
    circuit: QuantumCircuit,
    model: Optional[NoiseModel],
    trajectories: int,
) -> Tuple[int, Optional[float]]:
    """Trajectories the stochastic path will actually run, plus ``p_clean``.

    Under stratified sampling (PR 9, default on) the clean stratum folds
    analytically and only ``ceil(M * (1 - p_clean)**2)`` erring-conditioned
    trajectories replay; scoring dispatch with the naive ``M`` would
    overestimate stochastic cost ~100x at paper rates and wrongly route to
    exact.  Degrades to the naive budget exactly when the runtime plan
    would: stratification disabled, circuit not stratifiable, ``p_clean``
    zero (exact damping), or erring mass below
    :data:`~repro.stochastic.strata.MIN_ERRING_MASS` (noiseless).
    """
    naive = max(1, trajectories)
    if not stratified_enabled():
        return naive, None
    p_clean = static_clean_probability(circuit, model)
    if p_clean is None or p_clean <= 0.0 or (1.0 - p_clean) < MIN_ERRING_MASS:
        return naive, p_clean
    return stratified_samples(naive, p_clean), p_clean


def estimate_costs(
    circuit: QuantumCircuit,
    model: Optional[NoiseModel],
    properties: Sequence[PropertySpec],
    trajectories: int,
    backend_kind: str = "dd",
    history: Optional[Mapping[str, FamilyAggregate]] = None,
) -> DispatchDecision:
    """Score both methods and pick the cheaper one.

    ``trajectories`` is the job's epsilon/delta contract proxy — callers
    size it through :func:`~repro.stochastic.properties.hoeffding_samples`,
    so it carries the accuracy demand into the comparison.  ``history``
    (run-ledger family aggregates) upgrades the representation sizes from
    worst-case to measured when the family has recorded observations and
    ``REPRO_MEASURED_COST`` is not off; the decision then cites its
    evidence in :meth:`DispatchDecision.render`.
    """
    reason = exact_unsupported_reason(circuit, properties)
    exact_multiplies = count_exact_multiplies(circuit, model)
    num_qubits = circuit.num_qubits
    fingerprint = circuit_fingerprint(circuit, model, backend_kind)
    # Stochastic operation count: M trajectories replay the circuit's
    # operation schedule (one matrix-vector product per op), with M the
    # budget the stratified runtime will actually spend.
    num_ops = max(1, len(circuit.operations))
    budget, p_clean = stochastic_budget(circuit, model, trajectories)
    exact_nodes = float(4**num_qubits)
    stochastic_nodes = float(2**num_qubits)
    evidence = "worst_case"
    exact_observations = 0
    stochastic_observations = 0
    censored = False
    if history and measured_cost_enabled():
        cost_model = MeasuredCostModel(history)
        exact_evidence = cost_model.exact_size(fingerprint, num_qubits)
        stochastic_evidence = cost_model.stochastic_size(fingerprint, num_qubits)
        exact_nodes = exact_evidence.nodes
        stochastic_nodes = stochastic_evidence.nodes
        exact_observations = exact_evidence.observations
        stochastic_observations = stochastic_evidence.observations
        censored = exact_evidence.censored
        if "measured" in (exact_evidence.source, stochastic_evidence.source):
            evidence = "measured"
    exact_cost = float(exact_multiplies) * exact_nodes
    stochastic_cost = float(budget) * float(num_ops) * stochastic_nodes
    if reason is not None:
        method = "stochastic"
    else:
        method = "exact" if exact_cost < stochastic_cost else "stochastic"
    return DispatchDecision(
        method=method,
        exact_cost=exact_cost,
        stochastic_cost=stochastic_cost,
        exact_multiplies=exact_multiplies,
        unsupported_reason=reason,
        evidence=evidence,
        fingerprint=fingerprint,
        exact_nodes=exact_nodes,
        stochastic_nodes=stochastic_nodes,
        exact_observations=exact_observations,
        stochastic_observations=stochastic_observations,
        censored=censored,
        stochastic_budget=budget,
        p_clean=p_clean,
    )
