"""Exact circuit evaluation over the density-matrix DD backend.

:class:`ExactSimulator` runs a noisy circuit *once* — no trajectories, no
shots — and evaluates the same :class:`~repro.stochastic.properties.PropertySpec`
objects the stochastic runner estimates, returning a
:class:`~repro.stochastic.results.StochasticResult` whose estimates are
marked ``exact`` (zero variance, zero Hoeffding half-width) and whose
``method`` field reads ``"exact"``.  Result consumers — the CLI summary,
the service store, the benchmark harness — need no special casing.

The execution schedule mirrors the dense oracle's
:meth:`~repro.simulators.density_matrix.DensityMatrixSimulator.run_circuit_with_model`
step for step (same channels, same order, same crosstalk pairing), so the
two exact backends agree to numerical tolerance and either can stand in as
the CI oracle for the other.
"""

from __future__ import annotations

import os
import time
from typing import Optional, Sequence

import numpy as np

from ..circuits.circuit import QuantumCircuit
from ..noise.model import NoiseModel
from ..noise.stochastic import exact_channel_factory
from ..obs import MetricsRegistry, delta_snapshots, merge_snapshots
from ..simulators.gateplan import GATE, MEASURE, RESET, compile_plan
from ..stochastic.properties import ClassicalOutcome, PropertySpec, StateFidelity
from ..stochastic.results import PropertyEstimate, StochasticResult
from .backend import DensityDDBackend
from .cost import exact_unsupported_reason

__all__ = ["ExactSimulator", "simulate_exact", "default_node_ceiling"]

#: Environment override for the rho-DD node ceiling (the hybrid
#: scheduler's fallback trigger); unset or empty means "no ceiling".
NODE_CEILING_ENV = "REPRO_EXACT_NODE_CEILING"


def default_node_ceiling() -> Optional[int]:
    """Node ceiling from :data:`NODE_CEILING_ENV`, or ``None``."""
    raw = os.environ.get(NODE_CEILING_ENV, "").strip()
    if not raw:
        return None
    ceiling = int(raw)
    if ceiling < 1:
        raise ValueError(f"{NODE_CEILING_ENV} must be a positive integer, got {raw!r}")
    return ceiling


class _ExactContext:
    """Reference-state handles for property evaluation (exact flavour).

    Duck-types the stochastic runner's ``_EvaluationContext`` surface that
    property specs actually touch: :meth:`ideal_handle` and
    :meth:`target_handle`, both returning pinned vector-DD edges in the
    *same* package as rho (so ``backend.fidelity`` can mix them).
    """

    def __init__(self, circuit: QuantumCircuit) -> None:
        self.circuit = circuit
        self._ideal = None
        self._targets: dict = {}

    def ideal_handle(self, backend: DensityDDBackend):
        if self._ideal is None:
            import random

            from ..circuits.operations import MeasureOperation
            from ..simulators.base import execute_circuit
            from ..simulators.ddsim import DDBackend

            if any(isinstance(op, MeasureOperation) for op in self.circuit):
                raise ValueError(
                    "IdealFidelity is undefined for circuits with measurements"
                )
            reference = DDBackend(self.circuit.num_qubits, package=backend.package)
            execute_circuit(reference, self.circuit, random.Random(0))
            self._ideal = reference.snapshot()
            reference.release()
        return self._ideal

    def target_handle(self, spec: StateFidelity, backend: DensityDDBackend):
        handle = self._targets.get(spec.name)
        if handle is None:
            vector = np.asarray(spec.target, dtype=complex)
            handle = backend.package.inc_ref(backend.package.from_state_vector(vector))
            self._targets[spec.name] = handle
        return handle

    def release(self, backend: DensityDDBackend) -> None:
        package = backend.package
        if self._ideal is not None:
            package.dec_ref(self._ideal)
            self._ideal = None
        for handle in self._targets.values():
            package.dec_ref(handle)
        self._targets.clear()


#: Projector pair of the non-selective (dephasing) measurement channel.
_MEASURE_PROJECTORS = (
    np.array([[1, 0], [0, 0]], dtype=complex),
    np.array([[0, 0], [0, 1]], dtype=complex),
)

#: Kraus operators of the trace-out-and-reprepare reset channel.
_RESET_KRAUS = (
    np.array([[1, 0], [0, 0]], dtype=complex),
    np.array([[0, 1], [0, 0]], dtype=complex),
)


def _superop_matrix(kraus_operators) -> np.ndarray:
    """Liouville (superoperator) form ``sum_k K_k (x) K_k*`` of a channel."""
    total = np.zeros((4, 4), dtype=complex)
    for kraus in kraus_operators:
        kraus = np.asarray(kraus, dtype=complex)
        total += np.kron(kraus, kraus.conj())
    return total


def _compose_superops(channel_stack) -> tuple:
    """Fold an ordered stack of Kraus channels into one 4x4 superoperator.

    Returns ``(matrix, kraus_terms)`` or ``(None, 0)`` for an empty stack.
    Channels compose left-to-right in application order (later channels
    multiply on the left), exactly matching sequential application.
    """
    matrix = None
    terms = 0
    for kraus_operators in channel_stack:
        step = _superop_matrix(kraus_operators)
        matrix = step if matrix is None else step @ matrix
        terms += len(kraus_operators)
    return matrix, terms


class ExactSimulator:
    """One-pass exact evaluator with the stochastic runner's result shape."""

    def __init__(
        self, node_ceiling: Optional[int] = None, channel_mode: str = "superop"
    ) -> None:
        #: Rho-DD node budget; ``None`` defers to :data:`NODE_CEILING_ENV`.
        self.node_ceiling = (
            node_ceiling if node_ceiling is not None else default_node_ceiling()
        )
        if channel_mode not in ("superop", "kraus"):
            raise ValueError(
                f"channel_mode must be 'superop' or 'kraus', got {channel_mode!r}"
            )
        #: How noise channels hit rho: ``"superop"`` folds each site's
        #: channel stack into one 4x4 superoperator applied in a single DD
        #: traversal (the fast default); ``"kraus"`` applies every Kraus
        #: term as two DD multiplications (the paper-literal reference
        #: path).  The two are exactly the same linear map; tests pin them
        #: against each other.
        self.channel_mode = channel_mode

    def run(
        self,
        circuit: QuantumCircuit,
        noise_model: Optional[NoiseModel] = None,
        properties: Sequence[PropertySpec] = (),
    ) -> StochasticResult:
        """Evolve rho through ``circuit`` and evaluate every property exactly.

        Raises :class:`ValueError` for jobs the ensemble picture cannot
        express (classically conditioned gates, :class:`ClassicalOutcome`
        properties) and :class:`~repro.errors.ResourceLimitError` when the
        rho DD outgrows the node ceiling mid-flight.
        """
        reason = exact_unsupported_reason(circuit, properties)
        if reason is not None:
            raise ValueError(f"exact simulation unsupported: {reason}")
        started = time.perf_counter()
        metrics = MetricsRegistry()
        backend = DensityDDBackend(
            circuit.num_qubits, node_ceiling=self.node_ceiling
        )
        package = backend.package
        dd_before = package.metrics_snapshot()
        factory = exact_channel_factory(noise_model) if noise_model is not None else None
        try:
            plan = compile_plan(circuit, package=package, adjoints=True)
            self._evolve(backend, plan, factory, noise_model)
            context = _ExactContext(circuit)
            estimates = {}
            try:
                for spec in properties:
                    value = spec.evaluate(backend, None, context)
                    estimate = PropertyEstimate(spec.name, exact=True)
                    estimate.add(float(value))
                    estimates[spec.name] = estimate
            finally:
                context.release(backend)
            elapsed = time.perf_counter() - started
            result = StochasticResult(
                circuit_name=circuit.name,
                backend_kind="dd",
                method="exact",
                requested_trajectories=0,
                completed_trajectories=0,
                estimates=estimates,
                elapsed_seconds=elapsed,
                cpu_seconds=elapsed,
                peak_nodes=backend.peak_nodes,
                workers=1,
            )
            dd_delta = delta_snapshots(package.metrics_snapshot(), dd_before)
            result.metrics = merge_snapshots(metrics.snapshot(), dd_delta)
            return result
        finally:
            backend.release()

    def _evolve(self, backend, plan, factory, noise_model) -> None:
        """Run the compiled schedule, mirroring the dense oracle's flow.

        The channel *order* is the dense oracle's
        ``run_circuit_with_model`` order exactly — gate, per-qubit noise
        stack, pairwise crosstalk; readout noise, dephasing, measure
        noise; reset, reset noise — in both channel modes (superoperator
        composition preserves sequential-application semantics).
        """
        superops: dict = {}  # (site, name, qubit) -> (matrix | None, terms)
        for step in plan.steps:
            if step.kind == GATE:
                # ``exact_unsupported_reason`` already rejected conditions;
                # this guards direct callers that skip the cost layer.
                if step.condition is not None:
                    raise ValueError(
                        "exact simulation cannot run classically conditioned gates"
                    )
                backend.apply_operator_pair(step.gate_edge, step.adjoint_edge)
                for qubit in step.qubits:
                    self._apply_site(
                        backend, superops, factory, "gate", step.name, qubit
                    )
                if noise_model is not None and len(step.qubits) >= 2:
                    touched = step.qubits
                    for pair in zip(touched, touched[1:]):
                        rate = noise_model.rates_for(step.name, pair[1]).crosstalk
                        if rate > 0.0:
                            backend.apply_crosstalk(rate, pair[0], pair[1])
                continue
            if step.kind == MEASURE:
                self._apply_site(
                    backend, superops, factory, "measure", "measure", step.target
                )
                continue
            assert step.kind == RESET
            self._apply_site(
                backend, superops, factory, "reset", "reset", step.target
            )

    def _site_channels(self, factory, site: str, name: str, qubit: int) -> list:
        """Ordered Kraus-channel stack for one noise site (oracle order)."""
        if site == "gate":
            return list(factory(name, qubit)) if factory is not None else []
        if site == "measure":
            stack = list(factory("readout", qubit)) if factory is not None else []
            stack.append(_MEASURE_PROJECTORS)
            if factory is not None:
                stack.extend(factory("measure", qubit))
            return stack
        assert site == "reset"
        stack = [_RESET_KRAUS]
        if factory is not None:
            stack.extend(factory("reset", qubit))
        return stack

    def _apply_site(
        self, backend, superops: dict, factory, site: str, name: str, qubit: int
    ) -> None:
        """Apply one site's full channel stack in the configured mode."""
        if self.channel_mode == "kraus":
            for index, kraus_operators in enumerate(
                self._site_channels(factory, site, name, qubit)
            ):
                backend.apply_channel(
                    kraus_operators, qubit, f"exact:{site}:{name}:{index}"
                )
            return
        key = (site, name, qubit)
        entry = superops.get(key)
        if entry is None:
            entry = _compose_superops(self._site_channels(factory, site, name, qubit))
            superops[key] = entry
        matrix, terms = entry
        if matrix is not None:
            backend.apply_single_qubit_superop(matrix, qubit, kraus_terms=terms)


def simulate_exact(
    circuit: QuantumCircuit,
    noise_model: Optional[NoiseModel] = None,
    properties: Sequence[PropertySpec] = (),
    node_ceiling: Optional[int] = None,
    channel_mode: str = "superop",
) -> StochasticResult:
    """One-call wrapper around :class:`ExactSimulator`."""
    return ExactSimulator(node_ceiling=node_ceiling, channel_mode=channel_mode).run(
        circuit, noise_model=noise_model, properties=properties
    )
