"""Shared error taxonomy for the whole reproduction.

Every subsystem raises out of one tree rooted at :class:`ReproError`, so
callers (the CLI, the serve loop, the chaos harness) can catch at the
granularity they care about instead of pattern-matching ad-hoc
``RuntimeError``/``ValueError`` messages:

* :class:`SchedulerError` — the job service could not do its work
  (:class:`JobFailedError`, :class:`JobCancelledError`,
  :class:`PoisonChunkError`, :class:`WorkerPoolBrokenError`);
* :class:`StoreCorruptionError` — a result-store entry failed its
  integrity check (the store quarantines the entry and reports a cache
  miss; the exception type is raised internally and by strict readers);
* :class:`NumericalDriftError` — a decision-diagram trajectory's state
  norm drifted beyond tolerance (see ``repro.stochastic.runner``);
* :class:`ResourceLimitError` — a simulation would exceed (or exceeded
  mid-flight) an explicit resource ceiling: the dense density-matrix
  oracle's memory cap, or the exact DD backend's node-count ceiling (the
  signal the hybrid scheduler's stochastic fallback listens for).

``SchedulerError`` keeps ``RuntimeError`` in its bases and
``NumericalDriftError`` / ``ResourceLimitError`` keep ``ValueError`` —
pre-taxonomy callers that caught the builtin types keep working.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = [
    "ReproError",
    "SchedulerError",
    "JobFailedError",
    "JobCancelledError",
    "PoisonChunkError",
    "WorkerPoolBrokenError",
    "StoreCorruptionError",
    "NumericalDriftError",
    "ResourceLimitError",
]


class ReproError(Exception):
    """Root of the repo-wide error taxonomy."""


class SchedulerError(ReproError, RuntimeError):
    """Base class for job-service failures."""


class JobFailedError(SchedulerError):
    """A job exhausted its chunk retry budget."""


class JobCancelledError(SchedulerError):
    """The job was cancelled before completion."""


class PoisonChunkError(JobFailedError):
    """A chunk deterministically killed its worker and was quarantined.

    Retrying a chunk that reliably crashes the process that runs it would
    loop forever; after ``N`` worker-fatal attempts the scheduler
    quarantines the chunk and fails the job fast, attaching a structured
    :attr:`diagnosis` (chunk index, trajectory span, attempt count, and
    the observed failure reasons) so the bug can be reproduced offline.
    """

    def __init__(self, message: str, diagnosis: Optional[Dict[str, object]] = None) -> None:
        super().__init__(message)
        #: Structured description of the quarantined chunk: ``chunk_index``,
        #: ``first_trajectory``, ``num_trajectories``, ``attempts``,
        #: ``reasons`` (one entry per failed attempt).
        self.diagnosis: Dict[str, object] = dict(diagnosis or {})


class WorkerPoolBrokenError(JobFailedError):
    """The pool-level circuit breaker opened during a respawn storm.

    When workers die faster than a configured threshold the scheduler
    stops feeding the storm: pending jobs are failed with this error and
    the respawn history is reset so a later, healthy submission can still
    be served.
    """


class StoreCorruptionError(ReproError):
    """A result-store entry failed its integrity check.

    Raised internally by the store's verified read path; the default
    public readers catch it, quarantine the entry to a ``*.corrupt``
    sibling, bump ``store.corruption.*`` counters, and report a cache
    miss — corruption is always visible, never a silent ``None``.
    """


class NumericalDriftError(ReproError, ValueError):
    """A trajectory's state norm drifted beyond the configured tolerance.

    Decision-diagram trajectories renormalise after every stochastic
    Kraus branch, so the squared norm of the state should stay within
    floating-point distance of 1.  Drift beyond tolerance means the
    numerics can no longer be trusted; depending on configuration the
    runner raises this error or renormalises and counts the recovery.
    """

    def __init__(
        self,
        message: str,
        trajectory: Optional[int] = None,
        norm_squared: Optional[float] = None,
        tolerance: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.trajectory = trajectory
        self.norm_squared = norm_squared
        self.tolerance = tolerance


class ResourceLimitError(ReproError, ValueError):
    """A simulation hit an explicit resource ceiling.

    Raised up-front by the dense density-matrix oracle when the requested
    register would not fit its memory cap, and mid-flight by the exact
    decision-diagram backend when the rho-DD grows past its node-count
    ceiling.  The hybrid scheduler catches the mid-flight form and falls
    back to the stochastic path; interactive callers get a message naming
    the limit and, where one exists, the cheaper alternative.

    ``ValueError`` stays in the bases so pre-taxonomy callers that caught
    the dense oracle's original ``ValueError`` keep working.
    """

    def __init__(
        self,
        message: str,
        qubits: Optional[int] = None,
        estimated_bytes: Optional[int] = None,
        nodes: Optional[int] = None,
        ceiling: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.qubits = qubits
        self.estimated_bytes = estimated_bytes
        #: Observed DD node count at the moment the ceiling tripped.
        self.nodes = nodes
        #: The configured limit that was exceeded.
        self.ceiling = ceiling


def format_reasons(reasons: List[str], limit: int = 4) -> str:
    """Join failure reasons for a diagnosis message, truncating long tails."""
    unique: List[str] = []
    for reason in reasons:
        if reason not in unique:
            unique.append(reason)
    shown = "; ".join(unique[:limit])
    extra = len(unique) - limit
    return shown + (f" (+{extra} more)" if extra > 0 else "")
