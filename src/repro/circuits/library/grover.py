"""Grover search circuits, including the SAT-oracle variant (QASMBench ``sat``).

The paper's Table Ic ``sat`` row (n = 11) runs Grover iterations against a
small boolean-satisfiability oracle.  Structured oracles keep the state in a
low-rank superposition, so the DD simulator wins comfortably — the shape the
reproduction targets.

Exports:

* :func:`grover` — textbook Grover search for a marked basis state,
* :func:`sat` — Grover with a CNF clause oracle over data + clause ancillas.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from ..circuit import QuantumCircuit

__all__ = ["grover", "sat"]


def _diffuser(circuit: QuantumCircuit, qubits: Sequence[int]) -> None:
    """Inversion about the mean over ``qubits``."""
    for qubit in qubits:
        circuit.h(qubit)
        circuit.x(qubit)
    circuit.mcz([q for q in qubits[:-1]], qubits[-1])
    for qubit in qubits:
        circuit.x(qubit)
        circuit.h(qubit)


def grover(
    num_qubits: int,
    marked: Optional[int] = None,
    iterations: Optional[int] = None,
    measure: bool = True,
) -> QuantumCircuit:
    """Grover search for one marked computational basis state.

    Parameters
    ----------
    num_qubits:
        Width of the search register.
    marked:
        Index of the marked state; defaults to the all-ones state.
    iterations:
        Number of Grover iterations; defaults to the optimal
        ``floor(pi/4 * sqrt(2^n))``.
    """
    if num_qubits < 2:
        raise ValueError("Grover search needs at least 2 qubits")
    size = 1 << num_qubits
    if marked is None:
        marked = size - 1
    if not 0 <= marked < size:
        raise ValueError(f"marked state {marked} out of range")
    if iterations is None:
        iterations = max(1, int(math.floor(math.pi / 4.0 * math.sqrt(size))))

    circuit = QuantumCircuit(num_qubits, num_qubits, name=f"grover_{num_qubits}")
    qubits = list(range(num_qubits))
    for qubit in qubits:
        circuit.h(qubit)
    # Bits of the marked state, qubit 0 = most significant.
    marked_bits = [(marked >> (num_qubits - 1 - q)) & 1 for q in qubits]
    for _ in range(iterations):
        # Phase oracle: flip the sign of |marked>.
        for qubit, bit in zip(qubits, marked_bits):
            if not bit:
                circuit.x(qubit)
        circuit.mcz(qubits[:-1], qubits[-1])
        for qubit, bit in zip(qubits, marked_bits):
            if not bit:
                circuit.x(qubit)
        _diffuser(circuit, qubits)
    if measure:
        for qubit in qubits:
            circuit.measure(qubit, qubit)
    return circuit


Clause = Tuple[Tuple[int, bool], ...]


def _default_clauses(num_variables: int, num_clauses: int) -> List[Clause]:
    """A satisfiable 3-SAT-style instance touching every variable."""
    clauses: List[Clause] = []
    for index in range(num_clauses):
        a = index % num_variables
        b = (index + 1) % num_variables
        c = (index + 2) % num_variables
        clauses.append(((a, True), (b, index % 2 == 0), (c, True)))
    return clauses


def sat(
    num_qubits: int = 11,
    clauses: Optional[Sequence[Clause]] = None,
    iterations: int = 1,
    measure: bool = True,
) -> QuantumCircuit:
    """Grover search with a CNF-clause oracle (QASMBench-style ``sat``).

    Register layout: ``v`` variable qubits, one ancilla per clause, and one
    phase-kickback qubit; ``num_qubits = v + len(clauses) + 1``.  With the
    default clause set and ``num_qubits = 11`` this gives 5 variables and 5
    clauses, matching the Table Ic row's width.

    Each clause ancilla computes the OR of its literals (via De Morgan:
    X-conjugated multi-controlled X), the phase qubit flips when all clauses
    hold, and the oracle is uncomputed before the diffuser.
    """
    if clauses is None:
        num_variables = (num_qubits - 1) // 2
        clauses = _default_clauses(num_variables, num_qubits - 1 - num_variables)
    else:
        num_variables = num_qubits - 1 - len(clauses)
    num_clauses = len(clauses)
    if num_variables < 2:
        raise ValueError("sat circuit needs at least 2 variable qubits")
    if num_variables + num_clauses + 1 != num_qubits:
        raise ValueError(
            f"register mismatch: {num_variables} variables + {num_clauses} clauses "
            f"+ 1 phase qubit != {num_qubits}"
        )
    for clause in clauses:
        for variable, _ in clause:
            if not 0 <= variable < num_variables:
                raise ValueError(f"clause variable {variable} out of range")

    circuit = QuantumCircuit(num_qubits, num_variables, name=f"sat_{num_qubits}")
    variables = list(range(num_variables))
    ancillas = list(range(num_variables, num_variables + num_clauses))
    phase = num_qubits - 1

    for qubit in variables:
        circuit.h(qubit)
    # Phase kickback qubit in |->.
    circuit.x(phase)
    circuit.h(phase)

    def compute_clauses() -> None:
        for ancilla, clause in zip(ancillas, clauses):
            # ancilla = OR of literals = NOT(AND of negated literals).
            controls = {}
            for variable, positive in clause:
                controls[variable] = 0 if positive else 1
            circuit.x(ancilla)
            circuit.gate("x", ancilla, controls=controls)

    for _ in range(iterations):
        compute_clauses()
        circuit.gate("x", phase, controls={a: 1 for a in ancillas})
        compute_clauses()  # self-inverse uncompute
        _diffuser(circuit, variables)

    if measure:
        for qubit in variables:
            circuit.measure(qubit, qubit)
    return circuit
