"""The "Entanglement" benchmark circuit (GHZ-state preparation).

This is the workload of the paper's Table Ia: a Hadamard on the top qubit
followed by a CNOT chain entangling all remaining qubits, producing the GHZ
state ``(|0...0> + |1...1>)/sqrt(2)``.  Its decision diagram has exactly one
node per qubit regardless of width, which is why the proposed simulator
scales to 64 qubits while array-based simulators saturate in the low twenties.
"""

from __future__ import annotations

from ..circuit import QuantumCircuit

__all__ = ["ghz", "entanglement"]


def ghz(num_qubits: int, measure: bool = False) -> QuantumCircuit:
    """GHZ-state preparation on ``num_qubits`` qubits.

    Parameters
    ----------
    num_qubits:
        Register width (>= 1).
    measure:
        Append a full measurement when set (as the QASMBench variant does).
    """
    circuit = QuantumCircuit(num_qubits, name=f"entanglement_{num_qubits}")
    circuit.h(0)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    if measure:
        circuit.measure_all()
    return circuit


def entanglement(num_qubits: int, measure: bool = False) -> QuantumCircuit:
    """Alias matching the paper's benchmark name."""
    return ghz(num_qubits, measure=measure)
