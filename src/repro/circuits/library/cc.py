"""Counterfeit-coin finding circuit (QASMBench ``cc``, Table Ic n = 18).

The quantum counterfeit-coin protocol (Terhal/Smolin) finds the single fake
coin among ``k`` coins with one balance query.  The QASMBench realisation
uses ``k`` coin qubits plus one balance ancilla, a mid-circuit measurement
of the balance qubit and classically conditioned corrections — which this
reproduction keeps, as it exercises the simulators' measurement and
classical-control paths.

The paper reports this circuit as one of the DD simulator's *losses* (it
hits the one-hour timeout at n = 18): after the balance query the register
holds superpositions with little structure, and the conditional branch
doubles the work per trajectory.
"""

from __future__ import annotations

from ..circuit import QuantumCircuit
from ..operations import ClassicalCondition

__all__ = ["counterfeit_coin"]


def counterfeit_coin(num_qubits: int = 18, false_coin: int = 3) -> QuantumCircuit:
    """Counterfeit-coin finding over ``num_qubits - 1`` coins.

    Parameters
    ----------
    num_qubits:
        Total width: coins plus one balance ancilla (paper row: 18).
    false_coin:
        Index of the counterfeit coin the oracle marks.
    """
    if num_qubits < 3:
        raise ValueError("counterfeit-coin needs at least 3 qubits")
    coins = num_qubits - 1
    if not 0 <= false_coin < coins:
        raise ValueError(f"false coin {false_coin} out of range [0, {coins})")

    # Classical bits: balance measurement + final coin readout.
    circuit = QuantumCircuit(num_qubits, 1 + coins, name=f"cc_{num_qubits}")
    balance = num_qubits - 1

    # Query superposition over all even-weight coin subsets.
    for coin in range(coins):
        circuit.h(coin)
    for coin in range(coins):
        circuit.cx(coin, balance)
    circuit.h(balance)
    circuit.measure(balance, 0)

    # Post-selection branch: when the balance collapsed to |1> the register
    # holds the odd-weight subsets; the conditioned corrections map them
    # back into the even-weight query superposition.
    condition = ClassicalCondition((0,), 1)
    for coin in range(coins):
        circuit.gate("h", coin, condition=condition)
        circuit.gate("x", coin, condition=condition)
        circuit.gate("h", coin, condition=condition)

    # Balance query: the fake coin imprints a phase.
    circuit.z(false_coin)

    # Decode: Hadamards reveal the fake coin index.
    for coin in range(coins):
        circuit.h(coin)
    for coin in range(coins):
        circuit.measure(coin, 1 + coin)
    return circuit
