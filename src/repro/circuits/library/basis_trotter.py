"""Basis-rotation Trotter circuit (QASMBench ``basis_trotter``, Table Ic n = 4).

QASMBench's ``basis_trotter`` (generated from OpenFermion) Trotterises a
molecular single-particle basis change: thousands of Givens rotations and
phase gates on only four qubits.  The challenge for every simulator is the
sheer gate count, not the state size; the paper's Table Ic shows the DD
simulator roughly 2.4x faster on it.

We reproduce the structure: repeated layers of nearest-neighbour Givens
rotations with deterministic pseudo-random angles plus single-qubit phase
rotations, sized to match the original's gate count (~2000 gates for the
default parameters).
"""

from __future__ import annotations

from ..circuit import QuantumCircuit

__all__ = ["basis_trotter"]


def _angle(seed: int, index: int) -> float:
    """Deterministic pseudo-random angle in (-pi/4, pi/4)."""
    value = (seed * 1103515245 + index * 12345) % 104729
    return (value / 104729.0 - 0.5) * 1.5707963267948966


def _givens(circuit: QuantumCircuit, a: int, b: int, theta: float) -> None:
    """Givens rotation between adjacent modes ``a`` and ``b``.

    The standard decomposition used by OpenFermion's compiler: two CNOTs
    around a controlled-Y-rotation pair.
    """
    circuit.cx(b, a)
    circuit.cry(2.0 * theta, a, b)
    circuit.cx(b, a)


def basis_trotter(
    num_qubits: int = 4,
    layers: int = 60,
    seed: int = 11,
    measure: bool = False,
) -> QuantumCircuit:
    """Dense Givens-rotation network over ``num_qubits`` modes.

    Parameters
    ----------
    num_qubits:
        Number of modes (paper row: 4).
    layers:
        Brick-wall layers of Givens rotations; the default yields a circuit
        in the same gate-count class as the QASMBench original.
    seed:
        Seed for the deterministic angles.
    measure:
        Append a full measurement at the end.
    """
    if num_qubits < 2:
        raise ValueError("basis_trotter needs at least 2 qubits")
    circuit = QuantumCircuit(num_qubits, name=f"basis_trotter_{num_qubits}")
    # Occupy alternating modes as the reference state.
    for qubit in range(0, num_qubits, 2):
        circuit.x(qubit)
    index = 0
    for layer in range(layers):
        start = layer % 2
        for a in range(start, num_qubits - 1, 2):
            theta = _angle(seed, index)
            index += 1
            _givens(circuit, a, a + 1, theta)
        for qubit in range(num_qubits):
            circuit.rz(_angle(seed, index), qubit)
            index += 1
    if measure:
        circuit.measure_all()
    return circuit
