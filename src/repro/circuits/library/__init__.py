"""Circuit generators for the paper's benchmark workloads.

* :func:`ghz` / :func:`entanglement` — Table Ia ("Entanglement").
* :func:`qft` — Table Ib.
* QASMBench-style circuits for Table Ic: :func:`bernstein_vazirani`,
  :func:`bigadder`, :func:`multiplier`, :func:`sat`, :func:`seca`,
  :func:`counterfeit_coin`, :func:`ising`, :func:`vqe_uccsd`,
  :func:`basis_trotter`.
* Extras: :func:`grover`, :func:`qpe`, :func:`w_state`,
  :func:`random_circuit`.

:data:`QASMBENCH_CIRCUITS` maps the paper's Table Ic rows to generators at
the published qubit counts.
"""

from typing import Callable, Dict, List, Tuple

from ..circuit import QuantumCircuit
from .adders import bigadder, multiplier, ripple_carry_adder
from .basis_trotter import basis_trotter
from .bv import bernstein_vazirani
from .cc import counterfeit_coin
from .ghz import entanglement, ghz
from .grover import grover, sat
from .ising import ising
from .misc import qpe, random_circuit, w_state
from .oracles import deutsch_jozsa, simon
from .qaoa import qaoa_maxcut, ring_graph
from .qft import inverse_qft, qft
from .seca import seca
from .vqe import vqe_uccsd

__all__ = [
    "QASMBENCH_CIRCUITS",
    "basis_trotter",
    "bernstein_vazirani",
    "bigadder",
    "counterfeit_coin",
    "deutsch_jozsa",
    "entanglement",
    "ghz",
    "grover",
    "inverse_qft",
    "ising",
    "multiplier",
    "qaoa_maxcut",
    "qasmbench_circuit",
    "qft",
    "qpe",
    "random_circuit",
    "ring_graph",
    "simon",
    "ripple_carry_adder",
    "sat",
    "seca",
    "vqe_uccsd",
    "w_state",
]

#: Table Ic rows: name -> (qubit count from the paper, generator thunk).
QASMBENCH_CIRCUITS: Dict[str, Tuple[int, Callable[[], QuantumCircuit]]] = {
    "basis_trotter": (4, lambda: basis_trotter(4)),
    "vqe_uccsd_6": (6, lambda: vqe_uccsd(6)),
    "vqe_uccsd_8": (8, lambda: vqe_uccsd(8)),
    "ising": (10, lambda: ising(10)),
    "seca": (11, lambda: seca(11)),
    "sat": (11, lambda: sat(11)),
    "multiplier": (15, lambda: multiplier(3)),
    "bigadder": (18, lambda: bigadder(18)),
    "cc": (18, lambda: counterfeit_coin(18)),
    "bv": (19, lambda: bernstein_vazirani(19)),
}


def qasmbench_circuit(name: str) -> QuantumCircuit:
    """Instantiate one of the Table Ic benchmark circuits by row name."""
    try:
        _, generator = QASMBENCH_CIRCUITS[name]
    except KeyError:
        known = ", ".join(sorted(QASMBENCH_CIRCUITS))
        raise KeyError(f"unknown QASMBench circuit '{name}'; known: {known}") from None
    return generator()
