"""Oracle-style algorithms: Deutsch-Jozsa and Simon.

Completes the library's coverage of QASMBench's algorithm families (both
appear in the suite at various widths).  Like Bernstein-Vazirani they are
Clifford-dominated and DD-friendly — useful additional structured
workloads for the harness.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..circuit import QuantumCircuit

__all__ = ["deutsch_jozsa", "simon"]


def deutsch_jozsa(
    num_qubits: int,
    balanced: bool = True,
    pattern: Optional[Sequence[int]] = None,
    measure: bool = True,
) -> QuantumCircuit:
    """Deutsch-Jozsa: decide whether the oracle is constant or balanced.

    Parameters
    ----------
    num_qubits:
        Total width (data qubits plus one ancilla).
    balanced:
        Use a balanced oracle (inner product with ``pattern``); a constant
        oracle otherwise.
    pattern:
        Mask defining the balanced function ``f(x) = pattern . x``;
        defaults to all ones.  Ignored for constant oracles.
    measure:
        Measure the data register (all zeros <=> constant).
    """
    if num_qubits < 2:
        raise ValueError("Deutsch-Jozsa needs at least 2 qubits")
    data = num_qubits - 1
    ancilla = num_qubits - 1
    if pattern is None:
        pattern = [1] * data
    if len(pattern) != data:
        raise ValueError(f"pattern must have {data} bits")
    circuit = QuantumCircuit(num_qubits, data, name=f"dj_{num_qubits}")
    circuit.x(ancilla)
    for qubit in range(num_qubits):
        circuit.h(qubit)
    if balanced:
        for qubit, bit in enumerate(pattern):
            if bit:
                circuit.cx(qubit, ancilla)
    # Constant oracle: f == 0, nothing to apply.
    for qubit in range(data):
        circuit.h(qubit)
    if measure:
        for qubit in range(data):
            circuit.measure(qubit, qubit)
    return circuit


def simon(
    num_data_qubits: int,
    secret: Optional[Sequence[int]] = None,
    measure: bool = True,
) -> QuantumCircuit:
    """One query round of Simon's algorithm for a hidden XOR mask.

    Register: ``n`` data qubits plus ``n`` output qubits (total ``2n``).
    The oracle implements the standard 2-to-1 function ``f(x) = x XOR
    (x[j] ? secret : 0)`` via CNACs: copy ``x`` to the output register,
    then, controlled on the first set bit of ``secret``, XOR ``secret``
    into the output.  Measuring the data register after the final
    Hadamards yields a string ``y`` with ``y . secret == 0`` — which the
    tests verify over many trajectories.
    """
    if num_data_qubits < 2:
        raise ValueError("Simon's algorithm needs at least 2 data qubits")
    if secret is None:
        secret = [1] + [0] * (num_data_qubits - 2) + [1]
    if len(secret) != num_data_qubits or not any(secret):
        raise ValueError("secret must be a non-zero mask over the data qubits")
    n = num_data_qubits
    circuit = QuantumCircuit(2 * n, n, name=f"simon_{2 * n}")
    data = list(range(n))
    output = list(range(n, 2 * n))
    pivot = next(index for index, bit in enumerate(secret) if bit)

    for qubit in data:
        circuit.h(qubit)
    # f(x) = x with the secret coset folded in: copy, then conditional XOR.
    for index in range(n):
        circuit.cx(data[index], output[index])
    for index, bit in enumerate(secret):
        if bit:
            circuit.cx(data[pivot], output[index])
    for qubit in data:
        circuit.h(qubit)
    if measure:
        for index in range(n):
            circuit.measure(data[index], index)
    return circuit
