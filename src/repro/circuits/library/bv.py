"""Bernstein-Vazirani circuit (QASMBench ``bv``, Table Ic at n = 19).

Finds a hidden bit string with a single oracle query.  The circuit is
Clifford and its state stays close to a product state throughout, so its
decision diagram is tiny — one of the circuits where the paper reports the
proposed simulator beating the baseline by a wide margin.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..circuit import QuantumCircuit

__all__ = ["bernstein_vazirani"]


def bernstein_vazirani(
    num_qubits: int,
    secret: Optional[Sequence[int]] = None,
    measure: bool = True,
) -> QuantumCircuit:
    """Bernstein-Vazirani over ``num_qubits`` qubits (data + one ancilla).

    Parameters
    ----------
    num_qubits:
        Total register width; the last qubit is the phase-kickback ancilla,
        leaving ``num_qubits - 1`` secret bits (QASMBench convention).
    secret:
        The hidden bit string (length ``num_qubits - 1``).  Defaults to the
        alternating pattern ``1010...`` used by the QASMBench generator.
    measure:
        Measure the data qubits at the end.
    """
    if num_qubits < 2:
        raise ValueError("Bernstein-Vazirani needs at least 2 qubits")
    data = num_qubits - 1
    if secret is None:
        secret = [(i + 1) % 2 for i in range(data)]
    if len(secret) != data:
        raise ValueError(f"secret must have {data} bits, got {len(secret)}")

    circuit = QuantumCircuit(num_qubits, data, name=f"bv_{num_qubits}")
    ancilla = num_qubits - 1
    circuit.x(ancilla)
    for qubit in range(num_qubits):
        circuit.h(qubit)
    for qubit, bit in enumerate(secret):
        if bit:
            circuit.cx(qubit, ancilla)
    for qubit in range(data):
        circuit.h(qubit)
    if measure:
        for qubit in range(data):
            circuit.measure(qubit, qubit)
    return circuit
