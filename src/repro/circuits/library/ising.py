"""Trotterized transverse-field Ising model circuit (QASMBench ``ising``).

Table Ic's ``ising`` row (n = 10) is one of the circuits where the paper's
proposed DD simulator *loses* to the array baseline: the evolved state has
little tensor-product structure, so the decision diagram grows toward the
dense limit while an array simulator pays its flat O(2^n) per gate.

The circuit Trotterises ``H = -J sum Z_i Z_{i+1} - h sum X_i`` into layers
of ``rzz`` couplings and ``rx`` field rotations, starting from the uniform
superposition, mirroring the QASMBench generator's structure.
"""

from __future__ import annotations

from ..circuit import QuantumCircuit

__all__ = ["ising"]


def ising(
    num_qubits: int = 10,
    steps: int = 10,
    coupling: float = 1.0,
    field: float = 1.0,
    dt: float = 0.1,
    measure: bool = False,
) -> QuantumCircuit:
    """Trotterised 1-D transverse-field Ising evolution.

    Parameters
    ----------
    num_qubits:
        Chain length (paper row: 10).
    steps:
        Number of first-order Trotter steps.
    coupling, field:
        Ising coupling ``J`` and transverse field ``h``.
    dt:
        Trotter step size.
    measure:
        Append a full measurement at the end.
    """
    circuit = QuantumCircuit(num_qubits, name=f"ising_{num_qubits}")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    zz_angle = -2.0 * coupling * dt
    x_angle = -2.0 * field * dt
    for _ in range(steps):
        for qubit in range(num_qubits - 1):
            # rzz(theta) decomposed into the cx / rz / cx ladder.
            circuit.cx(qubit, qubit + 1)
            circuit.rz(zz_angle, qubit + 1)
            circuit.cx(qubit, qubit + 1)
        for qubit in range(num_qubits):
            circuit.rx(x_angle, qubit)
    if measure:
        circuit.measure_all()
    return circuit
