"""QAOA MaxCut circuits (Farhi et al., the paper's reference [6]).

The paper's introduction motivates stochastic noisy simulation with exactly
this class of variational algorithm.  The generator Trotterises ``p`` QAOA
layers for MaxCut on a given graph: a cost layer of ``rzz`` couplings per
edge and a mixer layer of ``rx`` rotations — structurally similar to
:func:`~repro.circuits.library.ising.ising` but parameterised per layer,
and dense for decision diagrams (a deliberate DD-hostile workload for the
ablation studies).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..circuit import QuantumCircuit

__all__ = ["qaoa_maxcut", "ring_graph"]

Edge = Tuple[int, int]


def ring_graph(num_vertices: int) -> Tuple[Edge, ...]:
    """Edges of a ring (cycle) graph — the standard QAOA test instance."""
    if num_vertices < 3:
        raise ValueError("a ring needs at least 3 vertices")
    return tuple((v, (v + 1) % num_vertices) for v in range(num_vertices))


def qaoa_maxcut(
    num_qubits: int,
    edges: Optional[Sequence[Edge]] = None,
    layers: int = 2,
    gammas: Optional[Sequence[float]] = None,
    betas: Optional[Sequence[float]] = None,
    measure: bool = True,
) -> QuantumCircuit:
    """QAOA for MaxCut on ``edges`` with ``layers`` alternating layers.

    Default angles follow the common linear ramp schedule, which is a
    reasonable ansatz without classical optimisation (the circuit
    *structure*, not the angle values, drives simulator cost).
    """
    if num_qubits < 2:
        raise ValueError("QAOA needs at least 2 qubits")
    if layers < 1:
        raise ValueError("QAOA needs at least one layer")
    if edges is None:
        edges = ring_graph(num_qubits)
    for a, b in edges:
        if not (0 <= a < num_qubits and 0 <= b < num_qubits) or a == b:
            raise ValueError(f"invalid edge ({a}, {b})")
    if gammas is None:
        # The p=1 ring-MaxCut optimum in this convention (rzz(2*gamma) /
        # rx(2*beta)) sits near gamma=1.2, beta=0.4, reaching the known
        # 3/4 * |E| expectation; real applications optimise classically.
        gammas = [1.2] * layers
    if betas is None:
        betas = [0.4] * layers
    if len(gammas) != layers or len(betas) != layers:
        raise ValueError("need one gamma and one beta per layer")

    circuit = QuantumCircuit(num_qubits, num_qubits, name=f"qaoa_{num_qubits}")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    for gamma, beta in zip(gammas, betas):
        for a, b in edges:
            # rzz(2*gamma) via the CX ladder.
            circuit.cx(a, b)
            circuit.rz(2.0 * gamma, b)
            circuit.cx(a, b)
        for qubit in range(num_qubits):
            circuit.rx(2.0 * beta, qubit)
    if measure:
        circuit.measure_all()
    return circuit
