"""Ripple-carry arithmetic circuits (QASMBench ``bigadder`` and ``multiplier``).

``bigadder`` (Table Ic, n = 18) is the Cuccaro/CDKM ripple-carry adder over
two 8-bit registers plus carry-in/carry-out qubits.  ``multiplier``
(Table Ic, n = 15) is a shift-and-add multiplier built from controlled
ripple additions.  Both act on computational basis states throughout, so
their decision diagrams stay narrow and the DD simulator wins by orders of
magnitude — exactly the shape of the paper's Table Ic rows.
"""

from __future__ import annotations

from ..circuit import QuantumCircuit

__all__ = ["ripple_carry_adder", "bigadder", "multiplier"]


def _majority(circuit: QuantumCircuit, a: int, b: int, c: int, controls=()) -> None:
    """CDKM MAJ block, optionally under additional controls."""
    extra = {q: 1 for q in controls}
    circuit.gate("x", b, controls={c: 1, **extra})
    circuit.gate("x", a, controls={c: 1, **extra})
    circuit.gate("x", c, controls={a: 1, b: 1, **extra})


def _unmajority(circuit: QuantumCircuit, a: int, b: int, c: int, controls=()) -> None:
    """CDKM UMA block (majority-undo plus sum), optionally controlled."""
    extra = {q: 1 for q in controls}
    circuit.gate("x", c, controls={a: 1, b: 1, **extra})
    circuit.gate("x", a, controls={c: 1, **extra})
    circuit.gate("x", b, controls={a: 1, **extra})


def ripple_carry_adder(
    bits: int,
    a_value: int = 0,
    b_value: int = 0,
    measure: bool = True,
) -> QuantumCircuit:
    """Cuccaro ripple-carry adder computing ``b := a + b`` over ``bits`` bits.

    Register layout (``2 * bits + 2`` qubits): carry-in ``cin``, interleaved
    ``a``/``b`` registers, carry-out ``cout``.  Initial values are loaded
    with X gates so the circuit is self-contained, like the QASMBench file.
    """
    if bits < 1:
        raise ValueError("adder needs at least one bit")
    num_qubits = 2 * bits + 2
    circuit = QuantumCircuit(num_qubits, bits + 1, name=f"adder_{num_qubits}")
    cin = 0
    a = [1 + 2 * i for i in range(bits)]  # a[i] at odd positions
    b = [2 + 2 * i for i in range(bits)]  # b[i] at even positions (after a[i])
    cout = num_qubits - 1

    for i in range(bits):
        if (a_value >> i) & 1:
            circuit.x(a[i])
        if (b_value >> i) & 1:
            circuit.x(b[i])

    _majority(circuit, cin, b[0], a[0])
    for i in range(1, bits):
        _majority(circuit, a[i - 1], b[i], a[i])
    circuit.cx(a[bits - 1], cout)
    for i in range(bits - 1, 0, -1):
        _unmajority(circuit, a[i - 1], b[i], a[i])
    _unmajority(circuit, cin, b[0], a[0])

    if measure:
        for i in range(bits):
            circuit.measure(b[i], i)
        circuit.measure(cout, bits)
    return circuit


def bigadder(num_qubits: int = 18, a_value: int = 170, b_value: int = 85) -> QuantumCircuit:
    """QASMBench-style ``bigadder``: an 8-bit ripple-carry addition (n = 18).

    ``num_qubits`` must be of the form ``2 * bits + 2``; the default matches
    the paper's Table Ic row.  Default operands exercise carries through the
    whole register (``0b10101010 + 0b01010101``).
    """
    if num_qubits % 2 != 0 or num_qubits < 4:
        raise ValueError("bigadder width must be even and >= 4")
    bits = (num_qubits - 2) // 2
    circuit = ripple_carry_adder(bits, a_value=a_value, b_value=b_value)
    circuit.name = f"bigadder_{num_qubits}"
    return circuit


def _controlled_cdkm_add(
    circuit: QuantumCircuit,
    control: int,
    addend: list,
    target: list,
    cin: int,
    cout: int,
) -> None:
    """CDKM ripple addition ``target += addend`` controlled on ``control``.

    Every MAJ/UMA gate carries the extra control, which implements the
    controlled version of the whole adder unitary.  ``addend`` and ``cin``
    are restored by construction.
    """
    bits = len(addend)
    controls = (control,)
    _majority(circuit, cin, target[0], addend[0], controls)
    for i in range(1, bits):
        _majority(circuit, addend[i - 1], target[i], addend[i], controls)
    circuit.gate("x", cout, controls={addend[bits - 1]: 1, control: 1})
    for i in range(bits - 1, 0, -1):
        _unmajority(circuit, addend[i - 1], target[i], addend[i], controls)
    _unmajority(circuit, cin, target[0], addend[0], controls)


def multiplier(bits: int = 3, a_value: int = 3, b_value: int = 5) -> QuantumCircuit:
    """Shift-and-add multiplier over ``bits``-bit operands.

    Register layout (``5 * bits`` qubits; ``bits = 3`` gives the 15 qubits of
    the paper's Table Ic row): operand ``a`` (``bits``), operand ``b``
    (``bits``), product (``2 * bits``), and one carry-in ancilla per shift
    stage.  For each bit ``a[i]``, a controlled CDKM ripple addition adds
    ``b << i`` into the product register.
    """
    if bits < 1:
        raise ValueError("multiplier needs at least one bit")
    num_p = 2 * bits
    num_qubits = 2 * bits + num_p + bits
    circuit = QuantumCircuit(num_qubits, num_p, name=f"multiplier_{num_qubits}")
    a = list(range(bits))
    b = list(range(bits, 2 * bits))
    product = list(range(2 * bits, 2 * bits + num_p))
    ancillas = list(range(2 * bits + num_p, num_qubits))

    for i in range(bits):
        if (a_value >> i) & 1:
            circuit.x(a[i])
        if (b_value >> i) & 1:
            circuit.x(b[i])

    for i in range(bits):
        # Add b << i into product, controlled on a[i].  The adder spans
        # product bits i .. i+bits-1 with carry-out into product[i+bits]
        # (the product of two ``bits``-bit values always fits 2*bits bits,
        # and for the top shift the carry lands on the final product bit).
        target = product[i : i + bits]
        if i + bits < num_p:
            cout = product[i + bits]
            _controlled_cdkm_add(circuit, a[i], b, target, ancillas[i], cout)
        else:  # pragma: no cover - cannot happen for bits >= 1
            raise AssertionError("product register too small")

    for index, qubit in enumerate(product):
        circuit.measure(qubit, index)
    return circuit
