"""Quantum Fourier Transform circuits (paper Table Ib).

The textbook QFT: per qubit a Hadamard followed by controlled phase
rotations of decreasing angle, with an optional final qubit-reversal SWAP
network.  Applied to a computational basis state the output is a tensor
product of single-qubit states, so its decision diagram stays linear in the
number of qubits — the property the paper's Table Ib exploits (the proposed
simulator reaches 64 qubits; note the growing runtimes versus GHZ caused by
the quadratic gate count and denser intermediate diagrams under noise).
"""

from __future__ import annotations

import math

from ..circuit import QuantumCircuit

__all__ = ["qft", "inverse_qft"]


def qft(num_qubits: int, do_swaps: bool = True, measure: bool = False) -> QuantumCircuit:
    """Quantum Fourier Transform on ``num_qubits`` qubits."""
    circuit = QuantumCircuit(num_qubits, name=f"qft_{num_qubits}")
    for target in range(num_qubits):
        circuit.h(target)
        for offset, control in enumerate(range(target + 1, num_qubits), start=2):
            circuit.cu1(2.0 * math.pi / (1 << offset), control, target)
    if do_swaps:
        for qubit in range(num_qubits // 2):
            circuit.swap(qubit, num_qubits - 1 - qubit)
    if measure:
        circuit.measure_all()
    return circuit


def inverse_qft(num_qubits: int, do_swaps: bool = True) -> QuantumCircuit:
    """Adjoint of :func:`qft` (used by phase estimation)."""
    forward = qft(num_qubits, do_swaps=do_swaps)
    inverse = forward.inverse(name=f"iqft_{num_qubits}")
    return inverse
