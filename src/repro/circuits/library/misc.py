"""Additional circuit generators: W state, QPE, and random circuits.

These round out the library beyond the paper's tables: the W state and
quantum phase estimation are classic structured workloads, and the random
circuit generator produces DD-hostile dense states — used by the ablation
benchmarks and the property-based tests.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from ..circuit import QuantumCircuit

__all__ = ["w_state", "qpe", "random_circuit"]


def w_state(num_qubits: int, measure: bool = False) -> QuantumCircuit:
    """W-state preparation via the cascade of controlled rotations."""
    if num_qubits < 2:
        raise ValueError("W state needs at least 2 qubits")
    circuit = QuantumCircuit(num_qubits, name=f"wstate_{num_qubits}")
    circuit.x(0)
    for k in range(num_qubits - 1):
        # Rotate amplitude from qubit k onto qubit k+1.
        remaining = num_qubits - k
        theta = 2.0 * math.acos(math.sqrt(1.0 / remaining))
        circuit.cry(theta, k, k + 1)
        circuit.cx(k + 1, k)
    if measure:
        circuit.measure_all()
    return circuit


def qpe(
    precision_qubits: int,
    phase: float = 0.25,
    measure: bool = True,
) -> QuantumCircuit:
    """Quantum phase estimation of a ``u1(2*pi*phase)`` eigenphase.

    Register: ``precision_qubits`` counting qubits plus one eigenstate
    qubit (prepared in |1>, the u1 eigenstate).  With ``phase`` a dyadic
    rational of ``precision_qubits`` bits the readout is deterministic.
    """
    if precision_qubits < 1:
        raise ValueError("QPE needs at least one precision qubit")
    num_qubits = precision_qubits + 1
    circuit = QuantumCircuit(num_qubits, precision_qubits, name=f"qpe_{num_qubits}")
    eigenstate = precision_qubits
    circuit.x(eigenstate)
    for qubit in range(precision_qubits):
        circuit.h(qubit)
    for qubit in range(precision_qubits):
        # Counting qubit `qubit` accumulates phase 2^(precision-1-qubit).
        repetitions = 1 << (precision_qubits - 1 - qubit)
        circuit.cu1(2.0 * math.pi * phase * repetitions, qubit, eigenstate)
    # Inverse QFT on the counting register.  After the phase stage, qubit q
    # carries e^{2 pi i k / 2^(q+1)} — exactly QFT|k> in this library's
    # MSB-first convention — so the library inverse recovers |k> directly.
    from .qft import inverse_qft

    circuit.extend(inverse_qft(precision_qubits, do_swaps=True))
    if measure:
        for qubit in range(precision_qubits):
            # Qubit 0 holds the most significant bit of k.
            circuit.measure(qubit, precision_qubits - 1 - qubit)
    return circuit


def random_circuit(
    num_qubits: int,
    depth: int,
    seed: Optional[int] = None,
    two_qubit_probability: float = 0.4,
    measure: bool = False,
) -> QuantumCircuit:
    """Random circuit of single-qubit rotations and CNOTs.

    Dense and structure-free by design: the worst case for decision
    diagrams, used by ablation benches and as a fuzzing source in tests.
    """
    if num_qubits < 1:
        raise ValueError("random circuit needs at least one qubit")
    if depth < 1:
        raise ValueError("depth must be positive")
    rng = random.Random(seed)
    circuit = QuantumCircuit(num_qubits, name=f"random_{num_qubits}x{depth}")
    single_gates = ("h", "x", "y", "z", "s", "t", "rx", "ry", "rz")
    for _ in range(depth):
        for qubit in range(num_qubits):
            if num_qubits > 1 and rng.random() < two_qubit_probability:
                partner = rng.randrange(num_qubits - 1)
                if partner >= qubit:
                    partner += 1
                circuit.cx(qubit, partner)
                continue
            name = rng.choice(single_gates)
            if name in ("rx", "ry", "rz"):
                circuit.gate(name, qubit, (rng.uniform(0, 2.0 * math.pi),))
            else:
                circuit.gate(name, qubit)
    if measure:
        circuit.measure_all()
    return circuit
