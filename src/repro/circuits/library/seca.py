"""Shor-code error-correction circuit (QASMBench ``seca``, Table Ic n = 11).

QASMBench's ``seca`` is "Shor's Error Correction Algorithm" demonstrated on
an 11-qubit register: a logical qubit encoded into the 9-qubit Shor code
(bit-flip repetition nested inside phase-flip repetition), an injected
error, majority-vote decoding, and a final entanglement check against a
2-qubit Bell register.  States stay sparse superpositions of a few basis
vectors, so the DD simulator handles it well — the paper reports an order
of magnitude speed-up on this row.
"""

from __future__ import annotations

import math
from typing import Optional

from ..circuit import QuantumCircuit

__all__ = ["seca"]


def _encode_shor(circuit: QuantumCircuit) -> None:
    """Encode qubit 0 into the 9-qubit Shor code on qubits 0..8."""
    # Phase-flip (sign) repetition across blocks {0,1,2} -> {0,3,6}.
    circuit.cx(0, 3)
    circuit.cx(0, 6)
    circuit.h(0)
    circuit.h(3)
    circuit.h(6)
    # Bit-flip repetition inside each block.
    for block in (0, 3, 6):
        circuit.cx(block, block + 1)
        circuit.cx(block, block + 2)


def _decode_shor(circuit: QuantumCircuit) -> None:
    """Decode the Shor code back onto qubit 0 (inverse encoding + majority)."""
    for block in (0, 3, 6):
        circuit.cx(block, block + 1)
        circuit.cx(block, block + 2)
        # Majority vote corrects a single bit flip inside the block.
        circuit.ccx(block + 1, block + 2, block)
    circuit.h(0)
    circuit.h(3)
    circuit.h(6)
    circuit.cx(0, 3)
    circuit.cx(0, 6)
    # Majority vote across blocks corrects a single phase flip.
    circuit.ccx(3, 6, 0)


def seca(
    num_qubits: int = 11,
    theta: float = math.pi / 3.0,
    error_qubit: Optional[int] = 4,
    error_kind: str = "x",
    measure: bool = True,
) -> QuantumCircuit:
    """Shor-code encode/error/decode plus Bell-pair verification.

    Parameters
    ----------
    num_qubits:
        Must be 11: nine code qubits plus a two-qubit Bell register.
    theta:
        Rotation preparing the logical state ``cos(theta/2)|0> + sin(theta/2)|1>``.
    error_qubit:
        Code qubit (0..8) receiving the injected error, or ``None``.
    error_kind:
        ``"x"``, ``"z"``, or ``"y"`` — the injected single-qubit error.
    measure:
        Measure the decoded qubit and the Bell register.
    """
    if num_qubits != 11:
        raise ValueError("seca is defined on exactly 11 qubits (9 code + 2 Bell)")
    if error_qubit is not None and not 0 <= error_qubit <= 8:
        raise ValueError("error qubit must lie inside the code block 0..8")
    if error_kind not in ("x", "y", "z"):
        raise ValueError("error kind must be 'x', 'y', or 'z'")

    circuit = QuantumCircuit(num_qubits, 3, name=f"seca_{num_qubits}")
    circuit.ry(theta, 0)
    _encode_shor(circuit)
    if error_qubit is not None:
        circuit.gate(error_kind, error_qubit)
    _decode_shor(circuit)
    # Entangle the recovered logical qubit with a Bell register (9, 10) —
    # the "teleportation check" stage of the QASMBench circuit.
    circuit.h(9)
    circuit.cx(9, 10)
    circuit.cx(0, 9)
    if measure:
        circuit.measure(0, 0)
        circuit.measure(9, 1)
        circuit.measure(10, 2)
    return circuit
