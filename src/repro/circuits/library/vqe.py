"""UCCSD-style VQE ansatz circuits (QASMBench ``vqe_uccsd``).

The paper's Table Ic contains ``vqe_uccsd`` at 6 and 8 qubits — circuits on
which the DD simulator struggles (the 8-qubit instance hits the one-hour
timeout): UCCSD ansaetze consist of long CNOT ladders sandwiching Rz
rotations for every single and double fermionic excitation, producing states
with essentially no DD redundancy.

This generator reproduces that structure: a Hartree-Fock reference state
followed by exponentiated single- and double-excitation Pauli strings in the
Jordan-Wigner encoding, with deterministic pseudo-random amplitudes derived
from a seed (real UCCSD amplitudes come from a classical optimiser; their
exact values do not change the circuit's structure, which is what drives the
benchmark).
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import List, Sequence, Tuple

from ..circuit import QuantumCircuit

__all__ = ["vqe_uccsd"]


def _pauli_string_rotation(
    circuit: QuantumCircuit, pauli: Sequence[Tuple[int, str]], angle: float
) -> None:
    """Append ``exp(-i * angle/2 * P)`` for a Pauli string ``P``.

    Standard construction: basis changes into Z, a CNOT ladder onto the last
    qubit, an Rz, and the mirrored uncompute.
    """
    for qubit, axis in pauli:
        if axis == "X":
            circuit.h(qubit)
        elif axis == "Y":
            # Rotate Y into Z: Rx(pi/2) convention.
            circuit.rx(math.pi / 2.0, qubit)
    qubits = [qubit for qubit, _ in pauli]
    for first, second in zip(qubits, qubits[1:]):
        circuit.cx(first, second)
    circuit.rz(angle, qubits[-1])
    for first, second in reversed(list(zip(qubits, qubits[1:]))):
        circuit.cx(first, second)
    for qubit, axis in pauli:
        if axis == "X":
            circuit.h(qubit)
        elif axis == "Y":
            circuit.rx(-math.pi / 2.0, qubit)


def _amplitude(seed: int, index: int) -> float:
    """Deterministic pseudo-random excitation amplitude in (-0.2, 0.2)."""
    value = (seed * 2654435761 + index * 40503) % 10007
    return 0.4 * (value / 10007.0) - 0.2


def vqe_uccsd(
    num_qubits: int = 8,
    occupied: int = 0,
    seed: int = 7,
    measure: bool = False,
) -> QuantumCircuit:
    """UCCSD ansatz over ``num_qubits`` spin orbitals.

    Parameters
    ----------
    num_qubits:
        Number of Jordan-Wigner qubits (paper rows: 6 and 8).
    occupied:
        Number of occupied orbitals in the Hartree-Fock reference; defaults
        to half filling.
    seed:
        Seed for the deterministic excitation amplitudes.
    measure:
        Append a full measurement at the end.
    """
    if num_qubits < 4:
        raise ValueError("UCCSD ansatz needs at least 4 qubits")
    if occupied <= 0:
        occupied = num_qubits // 2
    circuit = QuantumCircuit(num_qubits, name=f"vqe_uccsd_{num_qubits}")

    # Hartree-Fock reference: occupy the lowest orbitals.
    for qubit in range(occupied):
        circuit.x(qubit)

    virtual = list(range(occupied, num_qubits))
    occupied_list = list(range(occupied))
    amplitude_index = 0

    # Single excitations: for each (i occupied, a virtual) the JW-mapped
    # generator splits into two Pauli strings (XY and YX with Z chains).
    for i in occupied_list:
        for a in virtual:
            theta = _amplitude(seed, amplitude_index)
            amplitude_index += 1
            chain = [(q, "Z") for q in range(i + 1, a)]
            _pauli_string_rotation(
                circuit, [(i, "X")] + chain + [(a, "Y")], theta
            )
            _pauli_string_rotation(
                circuit, [(i, "Y")] + chain + [(a, "X")], -theta
            )

    # Double excitations: (i, j) occupied -> (a, b) virtual; the JW image of
    # each generator has eight Pauli strings, of which we take the standard
    # four-term real combination.
    double_patterns = [
        ("X", "X", "X", "Y"),
        ("X", "X", "Y", "X"),
        ("Y", "Y", "X", "Y"),
        ("Y", "Y", "Y", "X"),
    ]
    for i, j in combinations(occupied_list, 2):
        for a, b in combinations(virtual, 2):
            theta = _amplitude(seed, amplitude_index)
            amplitude_index += 1
            for sign_index, axes in enumerate(double_patterns):
                pauli = [(i, axes[0]), (j, axes[1]), (a, axes[2]), (b, axes[3])]
                sign = 1.0 if sign_index % 2 == 0 else -1.0
                _pauli_string_rotation(circuit, pauli, sign * theta / 4.0)

    if measure:
        circuit.measure_all()
    return circuit
