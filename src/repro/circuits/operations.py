"""Circuit operations: the instruction set of the intermediate representation.

Every instruction a :class:`~repro.circuits.circuit.QuantumCircuit` can hold
is one of the dataclasses below.  All of them are immutable and picklable —
a hard requirement, because the stochastic runner ships whole circuits to
worker processes (paper Section IV-C).

The gate model is deliberately minimal: a *single-qubit unitary plus a set
of (qubit, polarity) controls*.  Every OpenQASM 2.0 gate reduces to this
form (the standard requires composite gates to be definable from ``U`` and
``CX``), and it maps one-to-one onto the DD package's efficient
controlled-gate constructor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from .gates import gate_matrix

__all__ = [
    "Operation",
    "GateOperation",
    "MeasureOperation",
    "ResetOperation",
    "BarrierOperation",
    "ClassicalCondition",
]


@dataclass(frozen=True)
class ClassicalCondition:
    """Classical control: execute only when a bit group equals ``value``.

    ``clbits`` lists classical bit indices from least significant to most
    significant, mirroring OpenQASM's ``if (creg == value)`` semantics.
    """

    clbits: Tuple[int, ...]
    value: int

    def is_satisfied(self, classical_bits) -> bool:
        """Evaluate the condition against a classical bit array."""
        register_value = 0
        for position, clbit in enumerate(self.clbits):
            if classical_bits[clbit]:
                register_value |= 1 << position
        return register_value == self.value


@dataclass(frozen=True)
class Operation:
    """Base class for all circuit instructions."""

    @property
    def qubits(self) -> Tuple[int, ...]:
        """All qubits the instruction touches (noise is applied to these)."""
        raise NotImplementedError


@dataclass(frozen=True)
class GateOperation(Operation):
    """A unitary gate: single-qubit matrix on ``target`` plus controls.

    Parameters
    ----------
    name:
        OpenQASM gate name, resolved via :func:`repro.circuits.gates.gate_matrix`.
    params:
        Gate angle parameters (empty for fixed gates).
    target:
        Qubit the 2x2 unitary acts on.
    controls:
        Sorted tuple of ``(qubit, polarity)`` pairs; polarity 1 is a regular
        control, 0 a negated control.
    condition:
        Optional classical condition (OpenQASM ``if``).
    """

    name: str
    params: Tuple[float, ...] = ()
    target: int = 0
    controls: Tuple[Tuple[int, int], ...] = ()
    condition: Optional[ClassicalCondition] = None

    def __post_init__(self) -> None:
        control_qubits = [qubit for qubit, _ in self.controls]
        if self.target in control_qubits:
            raise ValueError(f"target {self.target} duplicated in controls")
        if len(set(control_qubits)) != len(control_qubits):
            raise ValueError("duplicate control qubits")

    @property
    def qubits(self) -> Tuple[int, ...]:
        return tuple(qubit for qubit, _ in self.controls) + (self.target,)

    @property
    def num_qubits(self) -> int:
        """Total qubits this gate spans (controls + target)."""
        return len(self.controls) + 1

    def matrix(self) -> np.ndarray:
        """The 2x2 unitary applied to the target qubit."""
        return gate_matrix(self.name, self.params)

    def control_dict(self) -> dict:
        """Controls as the ``{qubit: polarity}`` dict the DD package expects."""
        return dict(self.controls)

    def with_condition(self, condition: ClassicalCondition) -> "GateOperation":
        """Copy of this gate gated on a classical condition."""
        return GateOperation(self.name, self.params, self.target, self.controls, condition)

    def label(self) -> str:
        """Human-readable label, e.g. ``cx q0, q1`` or ``rz(0.5) q3``."""
        params = f"({', '.join(f'{p:g}' for p in self.params)})" if self.params else ""
        prefix = "c" * len(self.controls)
        qubits = ", ".join(f"q{q}" for q in self.qubits)
        return f"{prefix}{self.name}{params} {qubits}"


@dataclass(frozen=True)
class MeasureOperation(Operation):
    """Projective measurement of ``qubit`` into classical bit ``clbit``."""

    qubit: int
    clbit: int

    @property
    def qubits(self) -> Tuple[int, ...]:
        return (self.qubit,)


@dataclass(frozen=True)
class ResetOperation(Operation):
    """Reset ``qubit`` to |0> (measure and conditionally flip)."""

    qubit: int

    @property
    def qubits(self) -> Tuple[int, ...]:
        return (self.qubit,)


@dataclass(frozen=True)
class BarrierOperation(Operation):
    """Scheduling barrier; a no-op for simulation but kept for fidelity."""

    barrier_qubits: Tuple[int, ...] = field(default=())

    @property
    def qubits(self) -> Tuple[int, ...]:
        return self.barrier_qubits
