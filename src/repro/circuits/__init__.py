"""Quantum circuit IR, gate registry, OpenQASM front-end, circuit library."""

from .circuit import QuantumCircuit
from .gates import gate_matrix, is_known_gate
from .operations import (
    BarrierOperation,
    ClassicalCondition,
    GateOperation,
    MeasureOperation,
    Operation,
    ResetOperation,
)
from .qasm import parse_qasm, parse_qasm_file

__all__ = [
    "BarrierOperation",
    "ClassicalCondition",
    "GateOperation",
    "MeasureOperation",
    "Operation",
    "QuantumCircuit",
    "ResetOperation",
    "gate_matrix",
    "is_known_gate",
    "parse_qasm",
    "parse_qasm_file",
]
