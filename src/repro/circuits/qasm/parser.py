"""Recursive-descent parser for OpenQASM 2.0.

Parses the language subset every QASMBench circuit uses (which is, in
practice, all of OpenQASM 2.0):

* ``OPENQASM 2.0;`` header and ``include`` statements,
* ``qreg`` / ``creg`` declarations (multiple registers are flattened into a
  single qubit/clbit index space, in declaration order),
* the builtin gates ``U`` and ``CX`` plus the whole ``qelib1.inc`` gate set
  as *native* gates (qelib1 semantics are built in, so the include file
  itself is not needed on disk),
* user ``gate`` definitions with parameters, expanded (inlined) recursively
  at call sites,
* ``measure``, ``reset``, ``barrier``, ``opaque`` and ``if`` statements,
* register broadcasting (applying a gate to whole registers element-wise).

The output is a flat :class:`~repro.circuits.circuit.QuantumCircuit` whose
gates all carry a plain 2x2 matrix plus controls — directly consumable by
both simulators.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..circuit import QuantumCircuit
from ..operations import ClassicalCondition
from .expressions import (
    Binary,
    Expression,
    FunctionCall,
    Number,
    Parameter,
    FUNCTION_NAMES,
    Unary,
)
from .lexer import Token, tokenize

__all__ = ["QasmParserError", "parse_qasm", "parse_qasm_file"]


class QasmParserError(ValueError):
    """Raised on syntactically or semantically invalid OpenQASM input."""


@dataclass(frozen=True)
class _GateCall:
    """A gate invocation inside a gate-definition body."""

    name: str
    params: Tuple[Expression, ...]
    qargs: Tuple[str, ...]
    line: int


@dataclass(frozen=True)
class _BodyBarrier:
    """A barrier inside a gate-definition body (ignored on expansion)."""

    qargs: Tuple[str, ...]


_BodyStatement = Union[_GateCall, _BodyBarrier]


@dataclass(frozen=True)
class _GateDefinition:
    """A user ``gate`` definition awaiting expansion."""

    name: str
    params: Tuple[str, ...]
    qargs: Tuple[str, ...]
    body: Tuple[_BodyStatement, ...]


#: Maximum gate-expansion nesting.  OpenQASM 2.0 requires definition before
#: use, which rules out recursion, but a defensive limit converts bugs and
#: adversarial inputs into clean errors.
_MAX_EXPANSION_DEPTH = 64


class _Parser:
    """Single-use parser instance over one token stream."""

    def __init__(self, source: str, path: Optional[str] = None, name: str = "qasm") -> None:
        self.tokens = tokenize(source)
        self.position = 0
        self.path = path
        self.circuit_name = name
        self.qregs: Dict[str, Tuple[int, int]] = {}
        self.cregs: Dict[str, Tuple[int, int]] = {}
        self.num_qubits = 0
        self.num_clbits = 0
        self.gate_defs: Dict[str, _GateDefinition] = {}
        self.opaque_gates: set = set()
        self.circuit: Optional[QuantumCircuit] = None
        #: Operations buffered until register sizes are known.
        self._pending: List[Callable[[QuantumCircuit], None]] = []

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------

    def _peek(self) -> Optional[Token]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise QasmParserError("unexpected end of input")
        self.position += 1
        return token

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self._next()
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text or kind
            raise QasmParserError(
                f"expected {wanted!r} but found {token.text!r} at {token.line}:{token.column}"
            )
        return token

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        token = self._peek()
        if token is not None and token.kind == kind and (text is None or token.text == text):
            self.position += 1
            return token
        return None

    def _error(self, message: str, token: Optional[Token] = None) -> QasmParserError:
        location = f" at {token.line}:{token.column}" if token else ""
        return QasmParserError(message + location)

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def parse(self) -> QuantumCircuit:
        """Parse the token stream into a flat circuit."""
        self._parse_header()
        statements: List[Callable[[QuantumCircuit], None]] = []
        while self._peek() is not None:
            self._parse_statement()
        if self.num_qubits == 0:
            raise QasmParserError("no qreg declared")
        circuit = QuantumCircuit(self.num_qubits, max(self.num_clbits, 0), self.circuit_name)
        for emit in self._pending:
            emit(circuit)
        return circuit

    def _parse_header(self) -> None:
        self._expect("KEYWORD", "OPENQASM")
        version = self._next()
        if version.text not in ("2.0", "2"):
            raise self._error(f"unsupported OPENQASM version {version.text!r}", version)
        self._expect("SYMBOL", ";")

    def _parse_statement(self) -> None:
        token = self._peek()
        assert token is not None
        if token.kind == "KEYWORD":
            handler = {
                "include": self._parse_include,
                "qreg": self._parse_qreg,
                "creg": self._parse_creg,
                "gate": self._parse_gate_definition,
                "opaque": self._parse_opaque,
                "measure": self._parse_measure,
                "reset": self._parse_reset,
                "barrier": self._parse_barrier,
                "if": self._parse_if,
            }.get(token.text)
            if handler is None:
                raise self._error(f"unexpected keyword {token.text!r}", token)
            handler()
            return
        if token.kind == "ID":
            self._parse_gate_statement(condition=None)
            return
        raise self._error(f"unexpected token {token.text!r}", token)

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------

    def _parse_include(self) -> None:
        self._expect("KEYWORD", "include")
        filename = self._expect("STRING").text
        self._expect("SYMBOL", ";")
        if os.path.basename(filename) == "qelib1.inc":
            return  # qelib1 semantics are built in
        candidate = filename
        if self.path is not None:
            candidate = os.path.join(os.path.dirname(self.path), filename)
        if not os.path.exists(candidate):
            raise QasmParserError(f"cannot resolve include {filename!r}")
        with open(candidate, "r", encoding="utf-8") as handle:
            included = handle.read()
        # Splice the included tokens (minus any OPENQASM header) in place.
        tokens = tokenize(included)
        if tokens and tokens[0].kind == "KEYWORD" and tokens[0].text == "OPENQASM":
            # Drop "OPENQASM <ver> ;"
            tokens = tokens[3:]
        self.tokens = self.tokens[: self.position] + tokens + self.tokens[self.position :]

    def _parse_qreg(self) -> None:
        self._expect("KEYWORD", "qreg")
        name = self._expect("ID").text
        self._expect("SYMBOL", "[")
        size = int(self._expect("INT").text)
        self._expect("SYMBOL", "]")
        self._expect("SYMBOL", ";")
        if size < 1:
            raise QasmParserError(f"qreg '{name}' must have positive size")
        if name in self.qregs or name in self.cregs:
            raise QasmParserError(f"register '{name}' redeclared")
        self.qregs[name] = (self.num_qubits, size)
        self.num_qubits += size

    def _parse_creg(self) -> None:
        self._expect("KEYWORD", "creg")
        name = self._expect("ID").text
        self._expect("SYMBOL", "[")
        size = int(self._expect("INT").text)
        self._expect("SYMBOL", "]")
        self._expect("SYMBOL", ";")
        if size < 1:
            raise QasmParserError(f"creg '{name}' must have positive size")
        if name in self.cregs or name in self.qregs:
            raise QasmParserError(f"register '{name}' redeclared")
        self.cregs[name] = (self.num_clbits, size)
        self.num_clbits += size

    def _parse_opaque(self) -> None:
        self._expect("KEYWORD", "opaque")
        name = self._expect("ID").text
        self.opaque_gates.add(name)
        # Consume the remainder of the declaration.
        while self._accept("SYMBOL", ";") is None:
            self._next()

    # ------------------------------------------------------------------
    # Gate definitions
    # ------------------------------------------------------------------

    def _parse_gate_definition(self) -> None:
        self._expect("KEYWORD", "gate")
        name = self._expect("ID").text
        params: List[str] = []
        if self._accept("SYMBOL", "("):
            if self._accept("SYMBOL", ")") is None:
                params.append(self._expect("ID").text)
                while self._accept("SYMBOL", ","):
                    params.append(self._expect("ID").text)
                self._expect("SYMBOL", ")")
        qargs = [self._expect("ID").text]
        while self._accept("SYMBOL", ","):
            qargs.append(self._expect("ID").text)
        self._expect("SYMBOL", "{")
        body: List[_BodyStatement] = []
        while self._accept("SYMBOL", "}") is None:
            body.append(self._parse_body_statement(set(params), set(qargs)))
        self.gate_defs[name] = _GateDefinition(
            name, tuple(params), tuple(qargs), tuple(body)
        )

    def _parse_body_statement(self, params: set, qargs: set) -> _BodyStatement:
        token = self._peek()
        assert token is not None
        if token.kind == "KEYWORD" and token.text == "barrier":
            self._next()
            names = [self._expect("ID").text]
            while self._accept("SYMBOL", ","):
                names.append(self._expect("ID").text)
            self._expect("SYMBOL", ";")
            return _BodyBarrier(tuple(names))
        name_token = self._next()
        if name_token.kind not in ("ID", "KEYWORD"):
            raise self._error(f"unexpected token {name_token.text!r} in gate body", name_token)
        call_params: List[Expression] = []
        if self._accept("SYMBOL", "("):
            if self._accept("SYMBOL", ")") is None:
                call_params.append(self._parse_expression(params))
                while self._accept("SYMBOL", ","):
                    call_params.append(self._parse_expression(params))
                self._expect("SYMBOL", ")")
        call_qargs = [self._expect("ID").text]
        while self._accept("SYMBOL", ","):
            call_qargs.append(self._expect("ID").text)
        self._expect("SYMBOL", ";")
        for qarg in call_qargs:
            if qarg not in qargs:
                raise self._error(
                    f"gate body references undeclared qubit argument '{qarg}'", name_token
                )
        return _GateCall(name_token.text, tuple(call_params), tuple(call_qargs), name_token.line)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _parse_expression(self, params: set) -> Expression:
        return self._parse_additive(params)

    def _parse_additive(self, params: set) -> Expression:
        left = self._parse_multiplicative(params)
        while True:
            if self._accept("SYMBOL", "+"):
                left = Binary("+", left, self._parse_multiplicative(params))
            elif self._accept("SYMBOL", "-"):
                left = Binary("-", left, self._parse_multiplicative(params))
            else:
                return left

    def _parse_multiplicative(self, params: set) -> Expression:
        left = self._parse_power(params)
        while True:
            if self._accept("SYMBOL", "*"):
                left = Binary("*", left, self._parse_power(params))
            elif self._accept("SYMBOL", "/"):
                left = Binary("/", left, self._parse_power(params))
            else:
                return left

    def _parse_power(self, params: set) -> Expression:
        base = self._parse_unary(params)
        if self._accept("SYMBOL", "^"):
            return Binary("^", base, self._parse_power(params))
        return base

    def _parse_unary(self, params: set) -> Expression:
        if self._accept("SYMBOL", "-"):
            return Unary(self._parse_unary(params))
        if self._accept("SYMBOL", "+"):
            return self._parse_unary(params)
        return self._parse_primary(params)

    def _parse_primary(self, params: set) -> Expression:
        token = self._next()
        if token.kind in ("INT", "REAL"):
            return Number(float(token.text))
        if token.kind == "KEYWORD" and token.text == "pi":
            return Number(math.pi)
        if token.kind == "ID":
            if token.text in FUNCTION_NAMES:
                self._expect("SYMBOL", "(")
                argument = self._parse_expression(params)
                self._expect("SYMBOL", ")")
                return FunctionCall(token.text, argument)
            if token.text in params:
                return Parameter(token.text)
            raise self._error(f"unknown identifier '{token.text}' in expression", token)
        if token.kind == "SYMBOL" and token.text == "(":
            inner = self._parse_expression(params)
            self._expect("SYMBOL", ")")
            return inner
        raise self._error(f"unexpected token {token.text!r} in expression", token)

    # ------------------------------------------------------------------
    # Quantum operations at program level
    # ------------------------------------------------------------------

    def _parse_argument(self) -> Tuple[str, Optional[int], Token]:
        name_token = self._expect("ID")
        index: Optional[int] = None
        if self._accept("SYMBOL", "["):
            index = int(self._expect("INT").text)
            self._expect("SYMBOL", "]")
        return name_token.text, index, name_token

    def _resolve_qubits(self, name: str, index: Optional[int], token: Token) -> List[int]:
        if name not in self.qregs:
            raise self._error(f"unknown quantum register '{name}'", token)
        offset, size = self.qregs[name]
        if index is None:
            return [offset + i for i in range(size)]
        if not 0 <= index < size:
            raise self._error(f"index {index} out of range for qreg '{name}'", token)
        return [offset + index]

    def _resolve_clbits(self, name: str, index: Optional[int], token: Token) -> List[int]:
        if name not in self.cregs:
            raise self._error(f"unknown classical register '{name}'", token)
        offset, size = self.cregs[name]
        if index is None:
            return [offset + i for i in range(size)]
        if not 0 <= index < size:
            raise self._error(f"index {index} out of range for creg '{name}'", token)
        return [offset + index]

    def _parse_gate_statement(self, condition: Optional[ClassicalCondition]) -> None:
        name_token = self._next()
        name = name_token.text
        params: List[float] = []
        if self._accept("SYMBOL", "("):
            if self._accept("SYMBOL", ")") is None:
                params.append(self._parse_expression(set()).evaluate({}))
                while self._accept("SYMBOL", ","):
                    params.append(self._parse_expression(set()).evaluate({}))
                self._expect("SYMBOL", ")")
        arguments = [self._parse_argument()]
        while self._accept("SYMBOL", ","):
            arguments.append(self._parse_argument())
        self._expect("SYMBOL", ";")

        qubit_lists = [self._resolve_qubits(n, i, t) for n, i, t in arguments]
        broadcast = max(len(lst) for lst in qubit_lists)
        for lst in qubit_lists:
            if len(lst) not in (1, broadcast):
                raise self._error("register sizes do not broadcast", name_token)

        def emit(circuit: QuantumCircuit, name=name, params=tuple(params)) -> None:
            for shot in range(broadcast):
                qubits = [lst[0] if len(lst) == 1 else lst[shot] for lst in qubit_lists]
                self._apply_gate(circuit, name, params, qubits, condition, name_token, 0)

        self._pending.append(emit)

    def _parse_measure(self) -> None:
        self._expect("KEYWORD", "measure")
        q_name, q_index, q_token = self._parse_argument()
        self._expect("ARROW")
        c_name, c_index, c_token = self._parse_argument()
        self._expect("SYMBOL", ";")
        qubits = self._resolve_qubits(q_name, q_index, q_token)
        clbits = self._resolve_clbits(c_name, c_index, c_token)
        if len(qubits) != len(clbits):
            raise self._error("measure register sizes differ", q_token)

        def emit(circuit: QuantumCircuit) -> None:
            for qubit, clbit in zip(qubits, clbits):
                circuit.measure(qubit, clbit)

        self._pending.append(emit)

    def _parse_reset(self) -> None:
        self._expect("KEYWORD", "reset")
        name, index, token = self._parse_argument()
        self._expect("SYMBOL", ";")
        qubits = self._resolve_qubits(name, index, token)

        def emit(circuit: QuantumCircuit) -> None:
            for qubit in qubits:
                circuit.reset(qubit)

        self._pending.append(emit)

    def _parse_barrier(self) -> None:
        self._expect("KEYWORD", "barrier")
        arguments = [self._parse_argument()]
        while self._accept("SYMBOL", ","):
            arguments.append(self._parse_argument())
        self._expect("SYMBOL", ";")
        qubits: List[int] = []
        for name, index, token in arguments:
            qubits.extend(self._resolve_qubits(name, index, token))

        def emit(circuit: QuantumCircuit) -> None:
            circuit.barrier(*qubits)

        self._pending.append(emit)

    def _parse_if(self) -> None:
        self._expect("KEYWORD", "if")
        self._expect("SYMBOL", "(")
        creg_token = self._expect("ID")
        self._expect("EQ")
        value = int(self._expect("INT").text)
        self._expect("SYMBOL", ")")
        if creg_token.text not in self.cregs:
            raise self._error(f"unknown classical register '{creg_token.text}'", creg_token)
        offset, size = self.cregs[creg_token.text]
        condition = ClassicalCondition(tuple(range(offset, offset + size)), value)
        token = self._peek()
        if token is None:
            raise QasmParserError("dangling 'if'")
        if token.kind == "KEYWORD" and token.text in ("measure", "reset"):
            raise self._error("conditional measure/reset is not supported", token)
        self._parse_gate_statement(condition)

    # ------------------------------------------------------------------
    # Gate application and expansion
    # ------------------------------------------------------------------

    def _apply_gate(
        self,
        circuit: QuantumCircuit,
        name: str,
        params: Sequence[float],
        qubits: Sequence[int],
        condition: Optional[ClassicalCondition],
        token: Token,
        depth: int,
    ) -> None:
        if depth > _MAX_EXPANSION_DEPTH:
            raise self._error(f"gate expansion too deep at '{name}'", token)
        if len(set(qubits)) != len(qubits):
            raise self._error(f"gate '{name}' applied to duplicate qubits", token)
        definition = self.gate_defs.get(name)
        if definition is not None:
            self._expand_definition(circuit, definition, params, qubits, condition, token, depth)
            return
        if self._emit_native(circuit, name, params, qubits, condition, token):
            return
        if name in self.opaque_gates:
            raise self._error(f"opaque gate '{name}' cannot be simulated", token)
        raise self._error(f"unknown gate '{name}'", token)

    def _expand_definition(
        self,
        circuit: QuantumCircuit,
        definition: _GateDefinition,
        params: Sequence[float],
        qubits: Sequence[int],
        condition: Optional[ClassicalCondition],
        token: Token,
        depth: int,
    ) -> None:
        if len(params) != len(definition.params):
            raise self._error(
                f"gate '{definition.name}' takes {len(definition.params)} parameter(s), "
                f"got {len(params)}",
                token,
            )
        if len(qubits) != len(definition.qargs):
            raise self._error(
                f"gate '{definition.name}' takes {len(definition.qargs)} qubit(s), "
                f"got {len(qubits)}",
                token,
            )
        bindings = dict(zip(definition.params, params))
        qubit_map = dict(zip(definition.qargs, qubits))
        for statement in definition.body:
            if isinstance(statement, _BodyBarrier):
                continue
            call_params = [expr.evaluate(bindings) for expr in statement.params]
            call_qubits = [qubit_map[qarg] for qarg in statement.qargs]
            self._apply_gate(
                circuit, statement.name, call_params, call_qubits, condition, token, depth + 1
            )

    def _emit_native(
        self,
        circuit: QuantumCircuit,
        name: str,
        params: Sequence[float],
        qubits: Sequence[int],
        condition: Optional[ClassicalCondition],
        token: Token,
    ) -> bool:
        """Emit one of the built-in (qelib1) gates.  Returns False if unknown."""

        def check(n_params: int, n_qubits: int) -> None:
            if len(params) != n_params or len(qubits) != n_qubits:
                raise self._error(
                    f"gate '{name}' expects {n_params} param(s) and {n_qubits} qubit(s)",
                    token,
                )

        single_fixed = {
            "id": "id", "u0": "id", "x": "x", "y": "y", "z": "z", "h": "h",
            "s": "s", "sdg": "sdg", "t": "t", "tdg": "tdg", "sx": "sx", "sxdg": "sxdg",
        }
        if name in single_fixed:
            if name == "u0":
                check(1, 1)  # u0(gamma) q: wait cycles, identity semantics
            else:
                check(0, 1)
            circuit.gate(single_fixed[name], qubits[0], condition=condition)
            return True
        if name in ("rx", "ry", "rz", "u1", "p"):
            check(1, 1)
            qasm_name = "u1" if name == "p" else name
            circuit.gate(qasm_name, qubits[0], params, condition=condition)
            return True
        if name == "u2":
            check(2, 1)
            circuit.gate("u2", qubits[0], params, condition=condition)
            return True
        if name in ("u3", "u", "U"):
            check(3, 1)
            circuit.gate("u3", qubits[0], params, condition=condition)
            return True
        if name in ("CX", "cx"):
            check(0, 2)
            circuit.gate("x", qubits[1], controls={qubits[0]: 1}, condition=condition)
            return True
        if name in ("cy", "cz", "ch", "csx"):
            check(0, 2)
            circuit.gate(name[1:], qubits[1], controls={qubits[0]: 1}, condition=condition)
            return True
        if name in ("crx", "cry", "crz", "cu1", "cp"):
            check(1, 2)
            base = {"crx": "rx", "cry": "ry", "crz": "rz", "cu1": "u1", "cp": "u1"}[name]
            circuit.gate(base, qubits[1], params, controls={qubits[0]: 1}, condition=condition)
            return True
        if name == "cu3":
            check(3, 2)
            circuit.gate("u3", qubits[1], params, controls={qubits[0]: 1}, condition=condition)
            return True
        if name == "cu":
            check(4, 2)
            theta, phi, lam, gamma = params
            circuit.gate("u1", qubits[0], (gamma,), condition=condition)
            circuit.gate(
                "u3", qubits[1], (theta, phi, lam), controls={qubits[0]: 1}, condition=condition
            )
            return True
        if name == "ccx":
            check(0, 3)
            circuit.gate(
                "x", qubits[2], controls={qubits[0]: 1, qubits[1]: 1}, condition=condition
            )
            return True
        if name == "ccz":
            check(0, 3)
            circuit.gate(
                "z", qubits[2], controls={qubits[0]: 1, qubits[1]: 1}, condition=condition
            )
            return True
        if name == "swap":
            check(0, 2)
            a, b = qubits
            circuit.gate("x", b, controls={a: 1}, condition=condition)
            circuit.gate("x", a, controls={b: 1}, condition=condition)
            circuit.gate("x", b, controls={a: 1}, condition=condition)
            return True
        if name == "cswap":
            check(0, 3)
            control, a, b = qubits
            circuit.gate("x", a, controls={b: 1}, condition=condition)
            circuit.gate("x", b, controls={control: 1, a: 1}, condition=condition)
            circuit.gate("x", a, controls={b: 1}, condition=condition)
            return True
        if name == "rzz":
            check(1, 2)
            a, b = qubits
            circuit.gate("x", b, controls={a: 1}, condition=condition)
            circuit.gate("rz", b, params, condition=condition)
            circuit.gate("x", b, controls={a: 1}, condition=condition)
            return True
        if name == "rxx":
            check(1, 2)
            a, b = qubits
            circuit.gate("h", a, condition=condition)
            circuit.gate("h", b, condition=condition)
            circuit.gate("x", b, controls={a: 1}, condition=condition)
            circuit.gate("rz", b, params, condition=condition)
            circuit.gate("x", b, controls={a: 1}, condition=condition)
            circuit.gate("h", a, condition=condition)
            circuit.gate("h", b, condition=condition)
            return True
        # Generic multi-control spelling c...c<base> (e.g. "cccx"), the form
        # this library's own QASM export uses for >2 controls.
        from ..gates import FIXED_GATES, PARAMETRIC_GATES

        stripped = name.lstrip("c")
        num_controls = len(name) - len(stripped)
        if num_controls >= 1 and (stripped in FIXED_GATES or stripped in PARAMETRIC_GATES):
            expected_params = (
                0 if stripped in FIXED_GATES else PARAMETRIC_GATES[stripped][0]
            )
            check(expected_params, num_controls + 1)
            controls = {qubit: 1 for qubit in qubits[:num_controls]}
            circuit.gate(
                stripped, qubits[-1], params, controls=controls, condition=condition
            )
            return True
        return False


def parse_qasm(source: str, name: str = "qasm", path: Optional[str] = None) -> QuantumCircuit:
    """Parse OpenQASM 2.0 source text into a :class:`QuantumCircuit`."""
    return _Parser(source, path=path, name=name).parse()


def parse_qasm_file(path: str) -> QuantumCircuit:
    """Parse an OpenQASM 2.0 file into a :class:`QuantumCircuit`."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    base = os.path.splitext(os.path.basename(path))[0]
    return parse_qasm(source, name=base, path=path)
