"""Tokenizer for OpenQASM 2.0.

A small regex-driven lexer producing a flat token stream.  Comments
(``// ...``) and whitespace are skipped; line/column information is kept on
every token so the parser can produce precise error messages for the
QASMBench-style input files this front-end is meant to consume.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

__all__ = ["Token", "QasmLexerError", "tokenize"]

KEYWORDS = {
    "OPENQASM",
    "include",
    "qreg",
    "creg",
    "gate",
    "opaque",
    "measure",
    "reset",
    "barrier",
    "if",
    "pi",
}

_TOKEN_SPEC = [
    ("COMMENT", r"//[^\n]*"),
    ("REAL", r"(\d+\.\d*|\.\d+)([eE][+-]?\d+)?|\d+[eE][+-]?\d+"),
    ("INT", r"\d+"),
    ("STRING", r'"[^"\n]*"'),
    ("ID", r"[A-Za-z_][A-Za-z0-9_]*"),
    ("ARROW", r"->"),
    ("EQ", r"=="),
    ("SYMBOL", r"[{}()\[\];,+\-*/^]"),
    ("NEWLINE", r"\n"),
    ("SKIP", r"[ \t\r]+"),
    ("MISMATCH", r"."),
]

_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))


class QasmLexerError(ValueError):
    """Raised for characters the OpenQASM 2.0 grammar does not allow."""


@dataclass(frozen=True)
class Token:
    """One lexical token with source position (1-based line/column)."""

    kind: str
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source: str) -> List[Token]:
    """Tokenize OpenQASM source into a list of tokens (EOF excluded)."""
    tokens: List[Token] = []
    line = 1
    line_start = 0
    for match in _TOKEN_RE.finditer(source):
        kind = match.lastgroup or "MISMATCH"
        text = match.group()
        column = match.start() - line_start + 1
        if kind == "NEWLINE":
            line += 1
            line_start = match.end()
            continue
        if kind in ("SKIP", "COMMENT"):
            continue
        if kind == "MISMATCH":
            raise QasmLexerError(f"unexpected character {text!r} at {line}:{column}")
        if kind == "ID" and text in KEYWORDS:
            kind = "KEYWORD"
        if kind == "STRING":
            text = text[1:-1]
        tokens.append(Token(kind, text, line, column))
    return tokens
