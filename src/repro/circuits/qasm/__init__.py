"""OpenQASM 2.0 front-end: lexer, expression evaluator, and parser."""

from .expressions import QasmExpressionError
from .lexer import QasmLexerError, Token, tokenize
from .parser import QasmParserError, parse_qasm, parse_qasm_file

__all__ = [
    "QasmExpressionError",
    "QasmLexerError",
    "QasmParserError",
    "Token",
    "parse_qasm",
    "parse_qasm_file",
    "tokenize",
]
