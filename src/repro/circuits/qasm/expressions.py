"""Arithmetic expression AST and evaluator for OpenQASM gate parameters.

OpenQASM 2.0 gate parameters are real-valued expressions over literals,
``pi``, the enclosing gate definition's formal parameters, the binary
operators ``+ - * / ^`` and the unary functions ``sin cos tan exp ln sqrt``.
The parser builds these small ASTs; evaluation happens when a gate call is
expanded with concrete parameter bindings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Union

__all__ = [
    "Expression",
    "Number",
    "Parameter",
    "Binary",
    "Unary",
    "FunctionCall",
    "QasmExpressionError",
]


class QasmExpressionError(ValueError):
    """Raised when an expression cannot be evaluated."""


@dataclass(frozen=True)
class Number:
    """A literal constant (``pi`` is parsed into its numeric value)."""

    value: float

    def evaluate(self, bindings: Mapping[str, float]) -> float:
        return self.value


@dataclass(frozen=True)
class Parameter:
    """Reference to a formal gate parameter, bound at expansion time."""

    name: str

    def evaluate(self, bindings: Mapping[str, float]) -> float:
        try:
            return bindings[self.name]
        except KeyError:
            raise QasmExpressionError(f"unbound parameter '{self.name}'") from None


_BINARY_OPS: Dict[str, Callable[[float, float], float]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "^": lambda a, b: a**b,
}

_FUNCTIONS: Dict[str, Callable[[float], float]] = {
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "exp": math.exp,
    "ln": math.log,
    "sqrt": math.sqrt,
}


@dataclass(frozen=True)
class Binary:
    """A binary arithmetic operation."""

    op: str
    left: "Expression"
    right: "Expression"

    def evaluate(self, bindings: Mapping[str, float]) -> float:
        try:
            return _BINARY_OPS[self.op](
                self.left.evaluate(bindings), self.right.evaluate(bindings)
            )
        except ZeroDivisionError:
            raise QasmExpressionError("division by zero in gate parameter") from None


@dataclass(frozen=True)
class Unary:
    """Unary negation."""

    operand: "Expression"

    def evaluate(self, bindings: Mapping[str, float]) -> float:
        return -self.operand.evaluate(bindings)


@dataclass(frozen=True)
class FunctionCall:
    """A builtin unary function such as ``sin`` or ``sqrt``."""

    name: str
    argument: "Expression"

    def evaluate(self, bindings: Mapping[str, float]) -> float:
        try:
            function = _FUNCTIONS[self.name]
        except KeyError:
            raise QasmExpressionError(f"unknown function '{self.name}'") from None
        return function(self.argument.evaluate(bindings))


Expression = Union[Number, Parameter, Binary, Unary, FunctionCall]

#: Names usable as functions inside parameter expressions.
FUNCTION_NAMES = frozenset(_FUNCTIONS)
