"""Circuit optimisation passes.

The paper's reference [37] (Zulehner/Wille, DATE 2019) studies trading
matrix-vector against matrix-matrix DD multiplications; the circuit-level
counterpart implemented here is **single-qubit gate fusion**: maximal runs
of uncontrolled, unconditioned single-qubit gates on one qubit are composed
into a single ``u3`` (every SU(2) element, up to an irrelevant global
phase, is a ``u3``).  Fewer gate applications mean fewer DD multiplications
and fewer noise-insertion slots, so the pass exists in two flavours:

* :func:`fuse_single_qubit_runs` — semantics-preserving for *noiseless*
  simulation; under a noise model it also changes the physics (one fused
  gate attracts one error slot instead of ``k``), which is exactly what the
  ablation benchmark ``bench_ablation_fusion.py`` quantifies, and is a
  faithful model of hardware that compiles runs into single pulses.

Fusion never crosses measurements, resets, barriers, controlled gates, or
classically conditioned gates.
"""

from __future__ import annotations

import cmath
import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from .circuit import QuantumCircuit
from .operations import BarrierOperation, GateOperation, Operation

__all__ = ["fuse_single_qubit_runs", "matrix_to_u3_params", "insert_idle_identities"]


def matrix_to_u3_params(matrix: np.ndarray) -> Tuple[float, float, float]:
    """Decompose a 2x2 unitary into ``u3(theta, phi, lam)`` parameters.

    The result reproduces ``matrix`` up to a global phase, which is
    unobservable in both simulators (states are compared through quadratic
    properties).
    """
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.shape != (2, 2):
        raise ValueError("u3 decomposition needs a 2x2 matrix")
    # U = e^{i alpha} * [[cos, -e^{i lam} sin], [e^{i phi} sin, e^{i(phi+lam)} cos]]
    theta = 2.0 * math.atan2(abs(matrix[1, 0]), abs(matrix[0, 0]))
    if abs(matrix[1, 0]) < 1e-12:
        # Diagonal (theta = 0): only phi + lam is defined; pick phi = 0.
        alpha = cmath.phase(matrix[0, 0])
        return 0.0, 0.0, cmath.phase(matrix[1, 1]) - alpha
    if abs(matrix[0, 0]) < 1e-12:
        # Anti-diagonal (theta = pi): pick alpha = 0.
        return math.pi, cmath.phase(matrix[1, 0]), cmath.phase(-matrix[0, 1])
    alpha = cmath.phase(matrix[0, 0])
    phi = cmath.phase(matrix[1, 0]) - alpha
    lam = cmath.phase(-matrix[0, 1]) - alpha
    return theta, phi, lam


def _is_fusable(operation: Operation) -> bool:
    return (
        isinstance(operation, GateOperation)
        and not operation.controls
        and operation.condition is None
    )


def fuse_single_qubit_runs(circuit: QuantumCircuit) -> QuantumCircuit:
    """Fuse maximal runs of single-qubit gates per qubit into one ``u3``.

    Returns a new circuit; the input is untouched.  Runs of length one are
    kept verbatim (no pointless ``h`` -> ``u3`` rewrites).
    """
    fused = QuantumCircuit(circuit.num_qubits, circuit.num_clbits, f"{circuit.name}_fused")
    #: Pending run per qubit: list of GateOperations awaiting fusion.
    pending: Dict[int, List[GateOperation]] = {}

    def flush(qubit: int) -> None:
        run = pending.pop(qubit, None)
        if not run:
            return
        if len(run) == 1:
            fused.append(run[0])
            return
        matrix = np.eye(2, dtype=complex)
        for gate in run:
            matrix = gate.matrix() @ matrix
        theta, phi, lam = matrix_to_u3_params(matrix)
        fused.u3(theta, phi, lam, qubit)

    def flush_all() -> None:
        for qubit in sorted(pending):
            flush(qubit)

    for operation in circuit:
        if _is_fusable(operation):
            pending.setdefault(operation.target, []).append(operation)
            continue
        if isinstance(operation, BarrierOperation):
            flush_all()
            fused.append(operation)
            continue
        # Controlled / conditioned gates, measures, resets: flush every
        # qubit the operation touches, then emit it.
        for qubit in operation.qubits:
            flush(qubit)
        if isinstance(operation, GateOperation) and operation.condition is not None:
            # Classical conditions depend on measurement order; flush all
            # pending work to preserve program order conservatively.
            flush_all()
        fused.append(operation)
    flush_all()
    return fused


def insert_idle_identities(circuit: QuantumCircuit) -> QuantumCircuit:
    """Insert explicit ``id`` gates on idle qubits, one per time layer.

    The paper's predecessor work (reference [20], ICCAD 2020) applies
    decoherence errors per *time step* to every qubit — idle qubits decay
    too, which the per-gate error insertion misses.  This pass makes idle
    windows explicit: the circuit is scheduled into layers (the same greedy
    rule as :meth:`QuantumCircuit.depth`), and every qubit not touched in a
    layer receives an ``id`` gate.  Because the stochastic applier attaches
    errors to every gate — identities included — the transformed circuit
    models idle decoherence with no simulator changes.

    Measurements, resets, and barriers end their layer like gates do.  The
    output circuit's gate count grows by (number of layers) x (idle slots).
    """
    from .operations import GateOperation, MeasureOperation, ResetOperation

    result = QuantumCircuit(
        circuit.num_qubits, circuit.num_clbits, f"{circuit.name}_idle"
    )
    # Assign each operation to a layer.
    level: Dict[int, int] = {q: 0 for q in range(circuit.num_qubits)}
    layers: List[List[Operation]] = []
    for operation in circuit:
        touched = operation.qubits
        if isinstance(operation, BarrierOperation):
            # Barriers synchronise every qubit to a common layer boundary.
            boundary = max(level.values(), default=0)
            for qubit in level:
                level[qubit] = boundary
            continue
        if not touched:
            continue
        layer_index = max(level[q] for q in touched)
        while len(layers) <= layer_index:
            layers.append([])
        layers[layer_index].append(operation)
        for qubit in touched:
            level[qubit] = layer_index + 1

    for layer in layers:
        busy = set()
        for operation in layer:
            result.append(operation)
            busy.update(operation.qubits)
        for qubit in range(circuit.num_qubits):
            if qubit not in busy:
                result.i(qubit)
    return result
