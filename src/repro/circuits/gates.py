"""Standard gate matrices (OpenQASM 2.0 / qelib1 gate set).

Every gate the library, the QASM front-end, and the simulators use reduces
to a single-qubit 2x2 unitary plus a (possibly empty) set of controls; this
module is the registry of those 2x2 matrices.

Fixed gates are module-level constants; parametrised gates are functions of
their angle parameters.  :func:`gate_matrix` resolves a gate *name* (as used
in OpenQASM) and parameter list to the concrete matrix and is the single
lookup point for the rest of the library.
"""

from __future__ import annotations

import cmath
import math
from typing import Callable, Dict, Sequence, Tuple

import numpy as np

__all__ = [
    "I",
    "X",
    "Y",
    "Z",
    "H",
    "S",
    "SDG",
    "T",
    "TDG",
    "SX",
    "SXDG",
    "rx",
    "ry",
    "rz",
    "phase",
    "u2",
    "u3",
    "gate_matrix",
    "is_known_gate",
    "FIXED_GATES",
    "PARAMETRIC_GATES",
]

SQRT2_INV = 1.0 / math.sqrt(2.0)

I = np.eye(2, dtype=complex)
X = np.array([[0, 1], [1, 0]], dtype=complex)
Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
Z = np.array([[1, 0], [0, -1]], dtype=complex)
H = np.array([[SQRT2_INV, SQRT2_INV], [SQRT2_INV, -SQRT2_INV]], dtype=complex)
S = np.array([[1, 0], [0, 1j]], dtype=complex)
SDG = np.array([[1, 0], [0, -1j]], dtype=complex)
T = np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]], dtype=complex)
TDG = np.array([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]], dtype=complex)
SX = 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex)
SXDG = 0.5 * np.array([[1 - 1j, 1 + 1j], [1 + 1j, 1 - 1j]], dtype=complex)


def rx(theta: float) -> np.ndarray:
    """Rotation about the X axis by ``theta``."""
    cos = math.cos(theta / 2)
    sin = math.sin(theta / 2)
    return np.array([[cos, -1j * sin], [-1j * sin, cos]], dtype=complex)


def ry(theta: float) -> np.ndarray:
    """Rotation about the Y axis by ``theta``."""
    cos = math.cos(theta / 2)
    sin = math.sin(theta / 2)
    return np.array([[cos, -sin], [sin, cos]], dtype=complex)


def rz(theta: float) -> np.ndarray:
    """Rotation about the Z axis by ``theta`` (symmetric phase convention)."""
    return np.array(
        [[cmath.exp(-1j * theta / 2), 0], [0, cmath.exp(1j * theta / 2)]],
        dtype=complex,
    )


def phase(lam: float) -> np.ndarray:
    """Phase gate ``u1(lambda)`` = diag(1, e^{i lambda})."""
    return np.array([[1, 0], [0, cmath.exp(1j * lam)]], dtype=complex)


def u2(phi: float, lam: float) -> np.ndarray:
    """OpenQASM ``u2(phi, lambda)`` gate."""
    return SQRT2_INV * np.array(
        [
            [1, -cmath.exp(1j * lam)],
            [cmath.exp(1j * phi), cmath.exp(1j * (phi + lam))],
        ],
        dtype=complex,
    )


def u3(theta: float, phi: float, lam: float) -> np.ndarray:
    """OpenQASM ``u3(theta, phi, lambda)`` — the generic single-qubit gate."""
    cos = math.cos(theta / 2)
    sin = math.sin(theta / 2)
    return np.array(
        [
            [cos, -cmath.exp(1j * lam) * sin],
            [cmath.exp(1j * phi) * sin, cmath.exp(1j * (phi + lam)) * cos],
        ],
        dtype=complex,
    )


#: Fixed (parameter-free) single-qubit gates by OpenQASM name.
FIXED_GATES: Dict[str, np.ndarray] = {
    "id": I,
    "i": I,
    "x": X,
    "y": Y,
    "z": Z,
    "h": H,
    "s": S,
    "sdg": SDG,
    "t": T,
    "tdg": TDG,
    "sx": SX,
    "sxdg": SXDG,
}

#: Parametrised single-qubit gates: name -> (parameter count, constructor).
PARAMETRIC_GATES: Dict[str, Tuple[int, Callable[..., np.ndarray]]] = {
    "rx": (1, rx),
    "ry": (1, ry),
    "rz": (1, rz),
    "u1": (1, phase),
    "p": (1, phase),
    "u2": (2, u2),
    "u3": (3, u3),
    "u": (3, u3),
    "U": (3, u3),
}


def is_known_gate(name: str) -> bool:
    """True when ``name`` resolves to a registered single-qubit matrix."""
    return name in FIXED_GATES or name in PARAMETRIC_GATES


def gate_matrix(name: str, params: Sequence[float] = ()) -> np.ndarray:
    """Resolve a gate name and parameters to its 2x2 unitary.

    Raises
    ------
    KeyError
        For unknown gate names.
    ValueError
        When the parameter count does not match the gate's arity.
    """
    if name in FIXED_GATES:
        if params:
            raise ValueError(f"gate '{name}' takes no parameters, got {len(params)}")
        return FIXED_GATES[name]
    if name in PARAMETRIC_GATES:
        arity, constructor = PARAMETRIC_GATES[name]
        if len(params) != arity:
            raise ValueError(
                f"gate '{name}' takes {arity} parameter(s), got {len(params)}"
            )
        return constructor(*params)
    raise KeyError(f"unknown gate '{name}'")
