"""ASCII circuit rendering.

:func:`draw_circuit` renders a :class:`~repro.circuits.circuit.QuantumCircuit`
as fixed-width text, one row per qubit (plus a classical row when the
circuit measures), gates stacked left-to-right into time slots by the same
scheduling rule :meth:`QuantumCircuit.depth` uses::

    q0: ─[H]──●────────M0─
    q1: ──────[X]──●───M1─
    q2: ───────────[X]─M2─

Conventions: ``●`` regular control, ``○`` negated control, ``[..]`` gate
box on the target, ``M<k>`` measurement into classical bit ``k``, ``R``
reset, ``▒`` barrier column, ``?`` marks classically conditioned gates
(the condition is printed in a footnote line).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .circuit import QuantumCircuit
from .operations import (
    BarrierOperation,
    GateOperation,
    MeasureOperation,
    Operation,
    ResetOperation,
)

__all__ = ["draw_circuit"]

#: Render at most this many time slots before eliding the middle.
_MAX_SLOTS = 200


def _gate_symbol(gate: GateOperation) -> str:
    if gate.params:
        args = ",".join(f"{p:.3g}" for p in gate.params)
        label = f"{gate.name}({args})"
    else:
        label = gate.name.upper() if len(gate.name) == 1 else gate.name
    if gate.condition is not None:
        label += "?"
    return f"[{label}]"


def _assign_slots(circuit: QuantumCircuit) -> List[Tuple[int, Operation]]:
    """Greedy left-alignment: each op lands in the earliest free slot."""
    level: Dict[int, int] = {q: 0 for q in range(circuit.num_qubits)}
    placed: List[Tuple[int, Operation]] = []
    for operation in circuit:
        touched = operation.qubits
        if isinstance(operation, BarrierOperation):
            slot = max(level.values(), default=0)
            placed.append((slot, operation))
            for qubit in level:
                level[qubit] = slot + 1
            continue
        if not touched:
            continue
        slot = max(level[q] for q in touched)
        placed.append((slot, operation))
        for qubit in touched:
            level[qubit] = slot + 1
    return placed


def draw_circuit(circuit: QuantumCircuit) -> str:
    """Render the circuit as ASCII art (see module docstring)."""
    placed = _assign_slots(circuit)
    num_slots = max((slot for slot, _ in placed), default=-1) + 1
    elided = num_slots > _MAX_SLOTS

    # cells[qubit][slot] -> string
    cells: List[List[str]] = [["" for _ in range(num_slots)] for _ in range(circuit.num_qubits)]
    footnotes: List[str] = []

    for slot, operation in placed:
        if isinstance(operation, BarrierOperation):
            for qubit in operation.qubits:
                cells[qubit][slot] = "▒"
            continue
        if isinstance(operation, MeasureOperation):
            cells[operation.qubit][slot] = f"M{operation.clbit}"
            continue
        if isinstance(operation, ResetOperation):
            cells[operation.qubit][slot] = "R"
            continue
        assert isinstance(operation, GateOperation)
        for qubit, polarity in operation.controls:
            cells[qubit][slot] = "●" if polarity else "○"
        cells[operation.target][slot] = _gate_symbol(operation)
        if operation.condition is not None:
            footnotes.append(
                f"? on {operation.label()}: if c[{operation.condition.clbits[0]}"
                f"..{operation.condition.clbits[-1]}] == {operation.condition.value}"
            )

    slots_to_render = range(num_slots) if not elided else list(range(_MAX_SLOTS))
    widths = [
        max((len(cells[q][s]) for q in range(circuit.num_qubits)), default=1) or 1
        for s in slots_to_render
    ]

    label_width = len(f"q{circuit.num_qubits - 1}: ")
    lines: List[str] = []
    for qubit in range(circuit.num_qubits):
        parts = [f"q{qubit}: ".rjust(label_width)]
        for index, slot in enumerate(slots_to_render):
            cell = cells[qubit][slot]
            width = widths[index]
            if cell:
                padded = cell.center(width, "─")
            else:
                padded = "─" * width
            parts.append("─" + padded + "─")
        line = "".join(parts)
        if elided:
            line += " …"
        lines.append(line)
    if elided:
        lines.append(f"(… {num_slots - _MAX_SLOTS} more time slots elided)")
    lines.extend(footnotes)
    return "\n".join(lines)
