"""Quantum circuit intermediate representation.

:class:`QuantumCircuit` is a flat, ordered list of operations over ``n``
qubits and ``m`` classical bits, with fluent builder methods for the common
gate set.  The register convention follows the paper: qubit 0 is the *most
significant* qubit (the top level of a decision diagram, the leftmost bit of
basis-state labels such as ``|q0 q1 ... >``).

Circuits are picklable (a requirement for multi-process stochastic runs) and
can be exported to OpenQASM 2.0; together with the parser in
:mod:`repro.circuits.qasm` this gives a round-trippable interchange format.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .operations import (
    BarrierOperation,
    ClassicalCondition,
    GateOperation,
    MeasureOperation,
    Operation,
    ResetOperation,
)

__all__ = ["QuantumCircuit"]


class QuantumCircuit:
    """An ordered sequence of operations over a qubit/clbit register."""

    def __init__(self, num_qubits: int, num_clbits: int = 0, name: str = "circuit") -> None:
        if num_qubits < 1:
            raise ValueError("a circuit needs at least one qubit")
        if num_clbits < 0:
            raise ValueError("num_clbits must be non-negative")
        self.num_qubits = num_qubits
        self.num_clbits = num_clbits
        self.name = name
        self._operations: List[Operation] = []

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------

    @property
    def operations(self) -> Tuple[Operation, ...]:
        """The instruction sequence (immutable view)."""
        return tuple(self._operations)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._operations)

    def __len__(self) -> int:
        return len(self._operations)

    def __repr__(self) -> str:
        return (
            f"QuantumCircuit(name={self.name!r}, qubits={self.num_qubits}, "
            f"clbits={self.num_clbits}, ops={len(self._operations)})"
        )

    # ------------------------------------------------------------------
    # Generic appends
    # ------------------------------------------------------------------

    def _check_qubit(self, qubit: int) -> None:
        if not 0 <= qubit < self.num_qubits:
            raise IndexError(f"qubit {qubit} out of range [0, {self.num_qubits})")

    def _check_clbit(self, clbit: int) -> None:
        if not 0 <= clbit < self.num_clbits:
            raise IndexError(f"clbit {clbit} out of range [0, {self.num_clbits})")

    def append(self, operation: Operation) -> "QuantumCircuit":
        """Append a pre-built operation (validating its indices)."""
        for qubit in operation.qubits:
            self._check_qubit(qubit)
        if isinstance(operation, MeasureOperation):
            self._check_clbit(operation.clbit)
        if isinstance(operation, GateOperation) and operation.condition is not None:
            for clbit in operation.condition.clbits:
                self._check_clbit(clbit)
        self._operations.append(operation)
        return self

    def gate(
        self,
        name: str,
        target: int,
        params: Sequence[float] = (),
        controls: Optional[Dict[int, int]] = None,
        condition: Optional[ClassicalCondition] = None,
    ) -> "QuantumCircuit":
        """Append a gate by OpenQASM name."""
        control_items = tuple(sorted((controls or {}).items()))
        return self.append(
            GateOperation(name, tuple(float(p) for p in params), target, control_items, condition)
        )

    def extend(self, other: "QuantumCircuit") -> "QuantumCircuit":
        """Append all operations of another circuit over the same registers."""
        if other.num_qubits > self.num_qubits or other.num_clbits > self.num_clbits:
            raise ValueError("extending circuit does not fit this register")
        for operation in other:
            self.append(operation)
        return self

    # ------------------------------------------------------------------
    # Single-qubit gates
    # ------------------------------------------------------------------

    def i(self, qubit: int) -> "QuantumCircuit":
        """Identity (explicit idle step; errors still attach to it)."""
        return self.gate("id", qubit)

    def x(self, qubit: int) -> "QuantumCircuit":
        """Pauli X."""
        return self.gate("x", qubit)

    def y(self, qubit: int) -> "QuantumCircuit":
        """Pauli Y."""
        return self.gate("y", qubit)

    def z(self, qubit: int) -> "QuantumCircuit":
        """Pauli Z."""
        return self.gate("z", qubit)

    def h(self, qubit: int) -> "QuantumCircuit":
        """Hadamard."""
        return self.gate("h", qubit)

    def s(self, qubit: int) -> "QuantumCircuit":
        """Phase gate S."""
        return self.gate("s", qubit)

    def sdg(self, qubit: int) -> "QuantumCircuit":
        """Inverse phase gate S-dagger."""
        return self.gate("sdg", qubit)

    def t(self, qubit: int) -> "QuantumCircuit":
        """T gate."""
        return self.gate("t", qubit)

    def tdg(self, qubit: int) -> "QuantumCircuit":
        """T-dagger gate."""
        return self.gate("tdg", qubit)

    def sx(self, qubit: int) -> "QuantumCircuit":
        """Square root of X."""
        return self.gate("sx", qubit)

    def rx(self, theta: float, qubit: int) -> "QuantumCircuit":
        """X rotation."""
        return self.gate("rx", qubit, (theta,))

    def ry(self, theta: float, qubit: int) -> "QuantumCircuit":
        """Y rotation."""
        return self.gate("ry", qubit, (theta,))

    def rz(self, theta: float, qubit: int) -> "QuantumCircuit":
        """Z rotation."""
        return self.gate("rz", qubit, (theta,))

    def p(self, lam: float, qubit: int) -> "QuantumCircuit":
        """Phase gate diag(1, e^{i lambda})."""
        return self.gate("u1", qubit, (lam,))

    def u1(self, lam: float, qubit: int) -> "QuantumCircuit":
        """OpenQASM u1."""
        return self.gate("u1", qubit, (lam,))

    def u2(self, phi: float, lam: float, qubit: int) -> "QuantumCircuit":
        """OpenQASM u2."""
        return self.gate("u2", qubit, (phi, lam))

    def u3(self, theta: float, phi: float, lam: float, qubit: int) -> "QuantumCircuit":
        """OpenQASM u3 (generic single-qubit gate)."""
        return self.gate("u3", qubit, (theta, phi, lam))

    # ------------------------------------------------------------------
    # Controlled gates
    # ------------------------------------------------------------------

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        """Controlled X (CNOT)."""
        return self.gate("x", target, controls={control: 1})

    def cy(self, control: int, target: int) -> "QuantumCircuit":
        """Controlled Y."""
        return self.gate("y", target, controls={control: 1})

    def cz(self, control: int, target: int) -> "QuantumCircuit":
        """Controlled Z."""
        return self.gate("z", target, controls={control: 1})

    def ch(self, control: int, target: int) -> "QuantumCircuit":
        """Controlled Hadamard."""
        return self.gate("h", target, controls={control: 1})

    def crx(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        """Controlled X rotation."""
        return self.gate("rx", target, (theta,), controls={control: 1})

    def cry(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        """Controlled Y rotation."""
        return self.gate("ry", target, (theta,), controls={control: 1})

    def crz(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        """Controlled Z rotation."""
        return self.gate("rz", target, (theta,), controls={control: 1})

    def cp(self, lam: float, control: int, target: int) -> "QuantumCircuit":
        """Controlled phase (cu1)."""
        return self.gate("u1", target, (lam,), controls={control: 1})

    def cu1(self, lam: float, control: int, target: int) -> "QuantumCircuit":
        """Controlled u1."""
        return self.gate("u1", target, (lam,), controls={control: 1})

    def cu3(
        self, theta: float, phi: float, lam: float, control: int, target: int
    ) -> "QuantumCircuit":
        """Controlled u3."""
        return self.gate("u3", target, (theta, phi, lam), controls={control: 1})

    def ccx(self, control1: int, control2: int, target: int) -> "QuantumCircuit":
        """Toffoli (doubly-controlled X)."""
        return self.gate("x", target, controls={control1: 1, control2: 1})

    def mcx(self, controls: Iterable[int], target: int) -> "QuantumCircuit":
        """Multi-controlled X with an arbitrary number of controls."""
        return self.gate("x", target, controls={c: 1 for c in controls})

    def mcz(self, controls: Iterable[int], target: int) -> "QuantumCircuit":
        """Multi-controlled Z."""
        return self.gate("z", target, controls={c: 1 for c in controls})

    def swap(self, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        """SWAP, decomposed into three CNOTs (the qelib1 definition)."""
        self.cx(qubit_a, qubit_b)
        self.cx(qubit_b, qubit_a)
        self.cx(qubit_a, qubit_b)
        return self

    def cswap(self, control: int, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        """Fredkin gate: controlled SWAP via Toffolis."""
        self.cx(qubit_b, qubit_a)
        self.gate("x", qubit_b, controls={control: 1, qubit_a: 1})
        self.cx(qubit_b, qubit_a)
        return self

    # ------------------------------------------------------------------
    # Non-unitary operations
    # ------------------------------------------------------------------

    def measure(self, qubit: int, clbit: int) -> "QuantumCircuit":
        """Measure ``qubit`` into classical bit ``clbit``."""
        return self.append(MeasureOperation(qubit, clbit))

    def measure_all(self) -> "QuantumCircuit":
        """Measure every qubit into the identically indexed classical bit.

        Grows the classical register if it is too small.
        """
        if self.num_clbits < self.num_qubits:
            self.num_clbits = self.num_qubits
        for qubit in range(self.num_qubits):
            self.measure(qubit, qubit)
        return self

    def reset(self, qubit: int) -> "QuantumCircuit":
        """Reset a qubit to |0>."""
        return self.append(ResetOperation(qubit))

    def barrier(self, *qubits: int) -> "QuantumCircuit":
        """Barrier across the given qubits (all qubits when none given)."""
        chosen = qubits if qubits else tuple(range(self.num_qubits))
        return self.append(BarrierOperation(tuple(chosen)))

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------

    def gate_operations(self) -> List[GateOperation]:
        """All unitary gate instructions, in order."""
        return [op for op in self._operations if isinstance(op, GateOperation)]

    def count_ops(self) -> Dict[str, int]:
        """Histogram of instruction kinds, e.g. ``{'h': 1, 'cx': 2}``."""
        counts: Dict[str, int] = {}
        for operation in self._operations:
            if isinstance(operation, GateOperation):
                key = "c" * len(operation.controls) + operation.name
            elif isinstance(operation, MeasureOperation):
                key = "measure"
            elif isinstance(operation, ResetOperation):
                key = "reset"
            else:
                key = "barrier"
            counts[key] = counts.get(key, 0) + 1
        return counts

    def depth(self) -> int:
        """Circuit depth: longest chain of operations over shared qubits."""
        level: Dict[int, int] = {q: 0 for q in range(self.num_qubits)}
        for operation in self._operations:
            if isinstance(operation, BarrierOperation):
                continue
            touched = operation.qubits
            if not touched:
                continue
            new_level = max(level[q] for q in touched) + 1
            for q in touched:
                level[q] = new_level
        return max(level.values(), default=0)

    def num_gates(self) -> int:
        """Number of unitary gate instructions."""
        return sum(1 for op in self._operations if isinstance(op, GateOperation))

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_qasm(self) -> str:
        """Serialise to OpenQASM 2.0 (round-trips through the parser)."""
        lines = [
            "OPENQASM 2.0;",
            'include "qelib1.inc";',
            f"qreg q[{self.num_qubits}];",
        ]
        if self.num_clbits:
            lines.append(f"creg c[{self.num_clbits}];")
        for operation in self._operations:
            lines.append(self._operation_to_qasm(operation))
        return "\n".join(lines) + "\n"

    def _operation_to_qasm(self, operation: Operation) -> str:
        if isinstance(operation, MeasureOperation):
            return f"measure q[{operation.qubit}] -> c[{operation.clbit}];"
        if isinstance(operation, ResetOperation):
            return f"reset q[{operation.qubit}];"
        if isinstance(operation, BarrierOperation):
            qubits = ", ".join(f"q[{q}]" for q in operation.barrier_qubits)
            return f"barrier {qubits};"
        assert isinstance(operation, GateOperation)
        return self._gate_to_qasm(operation)

    def _gate_to_qasm(self, gate: GateOperation) -> str:
        params = ""
        if gate.params:
            params = "(" + ", ".join(repr(p) for p in gate.params) + ")"
        positive = [q for q, polarity in gate.controls if polarity == 1]
        negative = [q for q, polarity in gate.controls if polarity == 0]
        prefix = ""
        suffix = ""
        # Negative controls have no OpenQASM 2.0 syntax: surround with X.
        for qubit in negative:
            prefix += f"x q[{qubit}];\n"
            suffix += f"\nx q[{qubit}];"
        qasm_name = self._qasm_gate_name(gate, positive + negative)
        qubits = ", ".join(
            f"q[{q}]" for q in (positive + negative + [gate.target])
        )
        statement = f"{qasm_name}{params} {qubits};"
        if gate.condition is not None:
            statement = f"if (c == {gate.condition.value}) {statement}"
        return prefix + statement + suffix

    @staticmethod
    def _qasm_gate_name(gate: GateOperation, controls: List[int]) -> str:
        if not controls:
            return gate.name
        if len(controls) == 1 and gate.name in ("x", "y", "z", "h", "rz", "u1", "u3"):
            return "c" + gate.name
        if len(controls) == 2 and gate.name == "x":
            return "ccx"
        # Fall back to the generic multi-control spelling our parser accepts.
        return "c" * len(controls) + gate.name

    # ------------------------------------------------------------------
    # Utility constructors
    # ------------------------------------------------------------------

    def copy(self, name: Optional[str] = None) -> "QuantumCircuit":
        """Shallow copy (operations are immutable, so sharing is safe)."""
        duplicate = QuantumCircuit(self.num_qubits, self.num_clbits, name or self.name)
        duplicate._operations = list(self._operations)
        return duplicate

    def inverse(self, name: Optional[str] = None) -> "QuantumCircuit":
        """Adjoint circuit (unitary gates only).

        Raises if the circuit contains measurements or resets, which are not
        invertible.
        """
        inverted = QuantumCircuit(self.num_qubits, self.num_clbits, name or f"{self.name}_dg")
        for operation in reversed(self._operations):
            if isinstance(operation, BarrierOperation):
                inverted.append(operation)
                continue
            if not isinstance(operation, GateOperation):
                raise ValueError("cannot invert a circuit with measurements/resets")
            inverted.append(_inverse_gate(operation))
        return inverted


_SELF_INVERSE = {"id", "i", "x", "y", "z", "h"}
_DAGGER_PAIRS = {"s": "sdg", "sdg": "s", "t": "tdg", "tdg": "t", "sx": "sxdg", "sxdg": "sx"}
_NEGATE_PARAM = {"rx", "ry", "rz", "u1", "p"}


def _inverse_gate(gate: GateOperation) -> GateOperation:
    """Adjoint of one gate operation."""
    if gate.name in _SELF_INVERSE:
        return gate
    if gate.name in _DAGGER_PAIRS:
        return GateOperation(
            _DAGGER_PAIRS[gate.name], gate.params, gate.target, gate.controls, gate.condition
        )
    if gate.name in _NEGATE_PARAM:
        return GateOperation(
            gate.name, (-gate.params[0],), gate.target, gate.controls, gate.condition
        )
    if gate.name in ("u3", "u", "U"):
        theta, phi, lam = gate.params
        return GateOperation(
            gate.name, (-theta, -lam, -phi), gate.target, gate.controls, gate.condition
        )
    if gate.name == "u2":
        phi, lam = gate.params
        return GateOperation(
            "u3",
            (-math.pi / 2, -lam, -phi),
            gate.target,
            gate.controls,
            gate.condition,
        )
    raise ValueError(f"no inverse rule for gate '{gate.name}'")
