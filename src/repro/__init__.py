"""repro — Stochastic Quantum Circuit Simulation Using Decision Diagrams.

A Python reproduction of Fuss, Grurl, Kueng, Wille (DATE 2021): noisy
quantum circuits are simulated by Monte-Carlo sampling of pure-state
trajectories, each executed on a decision-diagram engine, with concurrency
across independent trajectories.

Quickstart::

    from repro import ghz, NoiseModel, simulate_stochastic, BasisProbability

    circuit = ghz(10)
    result = simulate_stochastic(
        circuit,
        noise_model=NoiseModel.paper_defaults(),
        properties=[BasisProbability("0" * 10), BasisProbability("1" * 10)],
        trajectories=2000,
    )
    print(result.summary())

See DESIGN.md for the subsystem map and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from .circuits import QuantumCircuit, parse_qasm, parse_qasm_file
from .circuits.drawing import draw_circuit
from .circuits.library import (
    basis_trotter,
    bernstein_vazirani,
    bigadder,
    counterfeit_coin,
    deutsch_jozsa,
    entanglement,
    ghz,
    grover,
    ising,
    multiplier,
    qaoa_maxcut,
    qasmbench_circuit,
    qft,
    qpe,
    random_circuit,
    sat,
    seca,
    simon,
    vqe_uccsd,
    w_state,
)
from .circuits.optimize import fuse_single_qubit_runs
from .dd import DDPackage
from .errors import (
    NumericalDriftError,
    PoisonChunkError,
    ReproError,
    ResourceLimitError,
    StoreCorruptionError,
    WorkerPoolBrokenError,
)
from .exact import (
    DensityDDBackend,
    DispatchDecision,
    ExactSimulator,
    estimate_costs,
    simulate_exact,
)
from .faults import FaultPlan, FaultSpec
from .noise import ErrorRates, NoiseModel
from .service import (
    JobSpec,
    JobState,
    JobStatus,
    ResultStore,
    Scheduler,
)
from .simulators import (
    DDBackend,
    DensityMatrixSimulator,
    StatevectorBackend,
    circuit_unitary_dd,
    circuit_unitary_matrix,
    circuits_equivalent,
    execute_circuit,
)
from .stochastic import (
    AdaptiveRun,
    BasisProbability,
    ClassicalOutcome,
    ExpectationZ,
    IdealFidelity,
    PauliExpectation,
    StateFidelity,
    StochasticResult,
    StochasticSimulator,
    hoeffding_epsilon,
    hoeffding_samples,
    run_until_precision,
    simulate_stochastic,
)

__version__ = "0.1.0"

__all__ = [
    "AdaptiveRun",
    "BasisProbability",
    "ClassicalOutcome",
    "DDBackend",
    "DDPackage",
    "DensityDDBackend",
    "DensityMatrixSimulator",
    "DispatchDecision",
    "ErrorRates",
    "ExactSimulator",
    "ExpectationZ",
    "FaultPlan",
    "FaultSpec",
    "IdealFidelity",
    "JobSpec",
    "JobState",
    "JobStatus",
    "NoiseModel",
    "NumericalDriftError",
    "PauliExpectation",
    "PoisonChunkError",
    "QuantumCircuit",
    "ReproError",
    "ResourceLimitError",
    "ResultStore",
    "Scheduler",
    "StoreCorruptionError",
    "WorkerPoolBrokenError",
    "StateFidelity",
    "StatevectorBackend",
    "StochasticResult",
    "StochasticSimulator",
    "__version__",
    "basis_trotter",
    "bernstein_vazirani",
    "bigadder",
    "circuit_unitary_dd",
    "circuit_unitary_matrix",
    "circuits_equivalent",
    "counterfeit_coin",
    "deutsch_jozsa",
    "draw_circuit",
    "entanglement",
    "estimate_costs",
    "execute_circuit",
    "fuse_single_qubit_runs",
    "ghz",
    "grover",
    "hoeffding_epsilon",
    "hoeffding_samples",
    "ising",
    "multiplier",
    "parse_qasm",
    "parse_qasm_file",
    "qaoa_maxcut",
    "qasmbench_circuit",
    "qft",
    "qpe",
    "random_circuit",
    "run_until_precision",
    "sat",
    "seca",
    "simon",
    "simulate_exact",
    "simulate_stochastic",
    "vqe_uccsd",
    "w_state",
]
