"""Export helpers for decision diagrams.

Provides Graphviz ``dot`` export (used by ``examples/figure1_decision_diagrams.py``
to regenerate the paper's Fig. 1) and a plain-text structural dump used in
tests and debugging.  Zero edges are rendered as ``0``-stubs and unit weights
are omitted, matching the drawing conventions of the paper's Fig. 1
(footnote 1).
"""

from __future__ import annotations

from typing import Dict, List

from .complex_table import format_complex
from .edge import Edge
from .node import Node

__all__ = ["to_dot", "structure_lines"]


def to_dot(edge: Edge, name: str = "dd") -> str:
    """Render a decision diagram rooted at ``edge`` as Graphviz dot source."""
    lines: List[str] = [
        f"digraph {name} {{",
        "  rankdir=TB;",
        "  root [shape=point];",
        "  terminal [shape=box, label=\"1\"];",
    ]
    ids: Dict[int, str] = {}
    counter = [0]

    def node_id(node: Node) -> str:
        if node.is_terminal:
            return "terminal"
        key = id(node)
        if key not in ids:
            ids[key] = f"n{counter[0]}"
            counter[0] += 1
        return ids[key]

    def edge_label(weight) -> str:
        if weight.is_one():
            return ""
        return format_complex(weight.value)

    visited: set = set()

    def walk(node: Node) -> None:
        if node.is_terminal or id(node) in visited:
            return
        visited.add(id(node))
        me = node_id(node)
        lines.append(f'  {me} [shape=circle, label="q{node.var}"];')
        for index, child in enumerate(node.edges):
            if child.is_zero:
                stub = f"{me}_z{index}"
                lines.append(f'  {stub} [shape=none, label="0"];')
                lines.append(f"  {me} -> {stub} [label=\"\", style=dashed];")
                continue
            label = edge_label(child.weight)
            lines.append(f'  {me} -> {node_id(child.node)} [label="{label}"];')
            walk(child.node)

    root_label = edge_label(edge.weight)
    if edge.is_zero:
        lines.append('  zero [shape=none, label="0"];')
        lines.append("  root -> zero;")
    else:
        lines.append(f'  root -> {node_id(edge.node)} [label="{root_label}"];')
        walk(edge.node)
    lines.append("}")
    return "\n".join(lines)


def structure_lines(edge: Edge) -> List[str]:
    """Deterministic structural dump: one line per node plus the root edge.

    Used by tests asserting the node/edge structure of the paper's Fig. 1.
    """
    lines = [f"root -> {format_complex(edge.weight.value)}"]
    visited: set = set()
    order: List[Node] = []

    def collect(node: Node) -> None:
        if node.is_terminal or id(node) in visited:
            return
        visited.add(id(node))
        order.append(node)
        for child in node.edges:
            collect(child.node)

    collect(edge.node)
    labels = {id(node): f"n{i}" for i, node in enumerate(order)}

    def describe(child: Edge) -> str:
        if child.is_zero:
            return "0-stub"
        target = "T" if child.node.is_terminal else labels[id(child.node)]
        return f"{format_complex(child.weight.value)}*{target}"

    for node in order:
        children = ", ".join(describe(child) for child in node.edges)
        lines.append(f"{labels[id(node)]}: q{node.var} [{children}]")
    return lines
