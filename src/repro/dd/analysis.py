"""Structural analysis of decision diagrams.

Diagnostics used by the benchmarks, the EXPERIMENTS report, and anyone
debugging why a circuit is (or is not) DD-friendly:

* :func:`level_widths` — node count per qubit level (the "shape" of the
  diagram; exponential growth shows up as a bulge in the middle levels);
* :func:`count_paths` — number of non-zero root-to-terminal paths, i.e.
  basis states with non-zero amplitude (computed without enumeration);
* :func:`memory_estimate` — approximate bytes held by a diagram;
* :func:`sparsity` — fraction of basis states with zero amplitude.
"""

from __future__ import annotations

from typing import Dict, List

from .edge import Edge
from .node import Node

__all__ = ["level_widths", "count_paths", "memory_estimate", "sparsity"]

#: Approximate bytes per node in this Python implementation: the Node
#: object, its edge tuple, and the unique-table entry.  Coarse, but
#: consistent across measurements — useful for *relative* comparisons.
_BYTES_PER_NODE = 200


def level_widths(edge: Edge) -> Dict[int, int]:
    """Distinct node count per level (qubit index) of the DD."""
    widths: Dict[int, int] = {}
    seen = set()

    def walk(node: Node) -> None:
        if node.is_terminal or id(node) in seen:
            return
        seen.add(id(node))
        widths[node.var] = widths.get(node.var, 0) + 1
        for child in node.edges:
            walk(child.node)

    walk(edge.node)
    return dict(sorted(widths.items()))


def count_paths(edge: Edge) -> int:
    """Number of root-to-terminal paths with non-zero weight.

    For a vector DD this is the number of basis states with non-zero
    amplitude; computed bottom-up with memoisation, so it is linear in the
    diagram size even when the path count is astronomically large.
    """
    if edge.weight.is_zero():
        return 0
    memo: Dict[int, int] = {}

    def paths(node: Node) -> int:
        if node.is_terminal:
            return 1
        cached = memo.get(id(node))
        if cached is not None:
            return cached
        total = 0
        for child in node.edges:
            if not child.weight.is_zero():
                total += paths(child.node)
        memo[id(node)] = total
        return total

    return paths(edge.node)


def memory_estimate(edge: Edge) -> int:
    """Approximate bytes held by the diagram rooted at ``edge``."""
    seen = set()

    def walk(node: Node) -> None:
        if node.is_terminal or id(node) in seen:
            return
        seen.add(id(node))
        for child in node.edges:
            walk(child.node)

    walk(edge.node)
    return len(seen) * _BYTES_PER_NODE


def sparsity(edge: Edge, num_qubits: int) -> float:
    """Fraction of basis states carrying zero amplitude (vector DDs)."""
    nonzero = count_paths(edge)
    total = 2**num_qubits
    return 1.0 - nonzero / total
