"""Decision-diagram engine (the paper's substrate, reference [39]).

Public entry point is :class:`DDPackage`; the remaining classes are exposed
for tests, diagnostics, and advanced users building custom DD algorithms.
"""

from .analysis import count_paths, level_widths, memory_estimate, sparsity
from .complex_table import ComplexTable, ComplexValue, DEFAULT_TOLERANCE
from .compute_table import ComputeTable
from .edge import Edge
from .io import structure_lines, to_dot
from .node import TERMINAL_VAR, Node
from .package import DDPackage
from .serialization import deserialize_edge, serialize_edge
from .unique_table import UniqueTable

__all__ = [
    "ComplexTable",
    "ComplexValue",
    "ComputeTable",
    "DDPackage",
    "DEFAULT_TOLERANCE",
    "Edge",
    "Node",
    "TERMINAL_VAR",
    "UniqueTable",
    "count_paths",
    "deserialize_edge",
    "level_widths",
    "memory_estimate",
    "serialize_edge",
    "sparsity",
    "structure_lines",
    "to_dot",
]
