"""Memoisation ("compute") tables for decision-diagram operations.

Recursive DD operations (addition, multiplication, Kronecker products, inner
products) revisit the same operand pairs many times; without memoisation the
recursions degenerate to exponential time even on compact diagrams.  A
compute table caches ``operation(operands) -> result`` keyed by operand
*identities* (valid because nodes and weights are hash-consed).

Entries may reference nodes that a later garbage collection removes, so the
package clears all compute tables after every collection — the same
invalidation policy as the JKU package.

The table is bounded: beyond ``max_entries`` it evicts wholesale (cheap and
effective for the access patterns of DD arithmetic, where stale entries are
rarely revisited).
"""

from __future__ import annotations

from typing import Dict, Generic, Hashable, Optional, TypeVar

__all__ = ["ComputeTable"]

V = TypeVar("V")


class ComputeTable(Generic[V]):
    """A bounded memoisation cache with hit/miss statistics.

    ``max_entries = 0`` disables the table entirely (every lookup misses,
    inserts are dropped) — used by the cache-ablation benchmark to measure
    what memoisation buys.
    """

    def __init__(self, name: str, max_entries: int = 1 << 18) -> None:
        self.name = name
        self.max_entries = max_entries
        self._table: Dict[Hashable, V] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def lookup(self, key: Hashable) -> Optional[V]:
        """Return the cached result for ``key`` or ``None``."""
        result = self._table.get(key)
        if result is None:
            self.misses += 1
        else:
            self.hits += 1
        return result

    def insert(self, key: Hashable, value: V) -> V:
        """Cache ``value`` under ``key`` and return it."""
        if self.max_entries == 0:
            return value
        if len(self._table) >= self.max_entries:
            self._table.clear()
            self.evictions += 1
        self._table[key] = value
        return value

    def clear(self) -> None:
        """Drop all entries (required after unique-table garbage collection)."""
        self._table.clear()

    def __len__(self) -> int:
        return len(self._table)

    def hit_ratio(self) -> float:
        """Fraction of lookups answered from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        """Occupancy and hit statistics."""
        return {
            "entries": len(self._table),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_ratio": self.hit_ratio(),
        }
