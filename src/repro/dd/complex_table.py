"""Canonicalisation of complex edge weights.

Decision diagrams only stay compact if *numerically equal* edge weights are
recognised as *identical* objects.  Floating-point arithmetic introduces tiny
rounding differences (``0.7071067811865476`` vs ``0.7071067811865475``) that
would otherwise make structurally identical nodes distinct and blow the
diagram up.  The JKU decision-diagram package (Zulehner, Hillmich, Wille,
*"How to efficiently handle complex values?"*, ICCAD 2019 -- the paper's
reference [39]) solves this with a table of canonical real numbers looked up
within a tolerance.  This module is a faithful Python port of that idea:

* :class:`RealTable` stores canonical ``float`` values in tolerance buckets.
  A lookup returns an already-stored value if one lies within ``tolerance``,
  otherwise it stores and returns the queried value.
* :class:`ComplexTable` builds on two such lookups (real and imaginary part)
  and hash-conses the resulting pair into a :class:`ComplexValue`.  Equal
  weights are therefore *the same object*, so nodes can be hashed and
  compared by identity.

The tables also pre-seed frequently used constants (0, 1, 1/sqrt(2), ...) so
those always canonicalise exactly.
"""

from __future__ import annotations

import cmath
import math
from typing import Dict, Optional, Tuple

__all__ = ["ComplexValue", "RealTable", "ComplexTable", "DEFAULT_TOLERANCE"]

#: Default absolute tolerance under which two reals are considered equal.
#: Matches the order of magnitude used by the JKU package (which uses
#: a configurable tolerance around 1e-13 by default).
DEFAULT_TOLERANCE = 1e-12

SQRT2_2 = math.sqrt(2.0) / 2.0


class ComplexValue:
    """A canonical (hash-consed) complex number used as a DD edge weight.

    Instances are only ever created by :class:`ComplexTable`; two values that
    compare equal within tolerance are guaranteed to be the same object, so
    identity comparison (``is``) is both correct and fast.
    """

    __slots__ = ("real", "imag", "_hash")

    def __init__(self, real: float, imag: float) -> None:
        self.real = real
        self.imag = imag
        self._hash = hash((real, imag))

    def __complex__(self) -> complex:
        return complex(self.real, self.imag)

    @property
    def value(self) -> complex:
        """The plain :class:`complex` this entry represents."""
        return complex(self.real, self.imag)

    def magnitude_squared(self) -> float:
        """Return ``|w|^2`` without intermediate object creation."""
        return self.real * self.real + self.imag * self.imag

    def magnitude(self) -> float:
        """Return ``|w|``."""
        return math.hypot(self.real, self.imag)

    def is_zero(self) -> bool:
        """True when this entry is the canonical zero weight."""
        return self.real == 0.0 and self.imag == 0.0

    def is_one(self) -> bool:
        """True when this entry is the canonical unit weight."""
        return self.real == 1.0 and self.imag == 0.0

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        # Canonicalisation guarantees identity for table members, but support
        # value equality so ComplexValues from *different* tables compare
        # sanely (used in tests).
        if isinstance(other, ComplexValue):
            return self.real == other.real and self.imag == other.imag
        if isinstance(other, (int, float, complex)):
            return self.value == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"ComplexValue({self.real!r}, {self.imag!r})"

    def __str__(self) -> str:
        return format_complex(self.value)


def format_complex(value: complex, precision: int = 6) -> str:
    """Format a complex number compactly (used by DD printers and dot export)."""
    re = round(value.real, precision)
    im = round(value.imag, precision)
    if im == 0.0:
        return f"{re:g}"
    if re == 0.0:
        return f"{im:g}i"
    sign = "+" if im > 0 else "-"
    return f"{re:g}{sign}{abs(im):g}i"


class RealTable:
    """Tolerance-bucketed table of canonical real numbers.

    Values are bucketed by ``round(value / tolerance)``.  A lookup inspects
    the value's own bucket and both neighbouring buckets, which is sufficient
    because any stored value within ``tolerance`` of the query must fall into
    one of those three buckets.
    """

    def __init__(self, tolerance: float = DEFAULT_TOLERANCE) -> None:
        if tolerance <= 0.0:
            raise ValueError("tolerance must be positive")
        self.tolerance = tolerance
        self._buckets: Dict[int, float] = {}
        self.hits = 0
        self.misses = 0
        # Seed exact constants so common amplitudes canonicalise to them.
        for constant in (0.0, 0.5, SQRT2_2, 1.0, -1.0, -0.5, -SQRT2_2):
            self._buckets[self._key(constant)] = constant

    def _key(self, value: float) -> int:
        return int(round(value / self.tolerance))

    def lookup(self, value: float) -> float:
        """Return the canonical representative of ``value``."""
        if value == 0.0:  # also catches -0.0
            return 0.0
        key = self._key(value)
        for candidate_key in (key, key - 1, key + 1):
            stored = self._buckets.get(candidate_key)
            if stored is not None and abs(stored - value) <= self.tolerance:
                self.hits += 1
                return stored
        self.misses += 1
        self._buckets[key] = value
        return value

    def __len__(self) -> int:
        return len(self._buckets)


class ComplexTable:
    """Hash-consing table for :class:`ComplexValue` edge weights."""

    def __init__(self, tolerance: float = DEFAULT_TOLERANCE) -> None:
        self._reals = RealTable(tolerance)
        self._entries: Dict[Tuple[float, float], ComplexValue] = {}
        #: Canonical zero and one, used pervasively by the DD package.
        self.zero = self.lookup(0.0 + 0.0j)
        self.one = self.lookup(1.0 + 0.0j)

    @property
    def tolerance(self) -> float:
        """Absolute tolerance used when canonicalising components."""
        return self._reals.tolerance

    def lookup(self, value: complex) -> ComplexValue:
        """Return the canonical :class:`ComplexValue` for ``value``."""
        real = self._reals.lookup(value.real)
        imag = self._reals.lookup(value.imag)
        key = (real, imag)
        entry = self._entries.get(key)
        if entry is None:
            entry = ComplexValue(real, imag)
            self._entries[key] = entry
        return entry

    def lookup_real(self, value: float) -> ComplexValue:
        """Canonicalise a purely real weight."""
        return self.lookup(complex(value, 0.0))

    def multiply(self, a: ComplexValue, b: ComplexValue) -> ComplexValue:
        """Canonical product of two table entries (with fast paths)."""
        if a.is_zero() or b.is_zero():
            return self.zero
        if a.is_one():
            return b
        if b.is_one():
            return a
        return self.lookup(a.value * b.value)

    def add(self, a: ComplexValue, b: ComplexValue) -> ComplexValue:
        """Canonical sum of two table entries (with fast paths)."""
        if a.is_zero():
            return b
        if b.is_zero():
            return a
        return self.lookup(a.value + b.value)

    def divide(self, a: ComplexValue, b: ComplexValue) -> ComplexValue:
        """Canonical quotient ``a / b``; ``b`` must be non-zero."""
        if b.is_zero():
            raise ZeroDivisionError("division by canonical zero weight")
        if a.is_zero():
            return self.zero
        if b.is_one():
            return a
        return self.lookup(a.value / b.value)

    def conjugate(self, a: ComplexValue) -> ComplexValue:
        """Canonical complex conjugate."""
        if a.imag == 0.0:
            return a
        return self.lookup(complex(a.real, -a.imag))

    def phase(self, a: ComplexValue) -> ComplexValue:
        """Canonical unit-magnitude phase ``a / |a|`` (``1`` for zero input)."""
        if a.is_zero():
            return self.one
        if a.imag == 0.0 and a.real > 0.0:
            return self.one
        magnitude = a.magnitude()
        return self.lookup(complex(a.real / magnitude, a.imag / magnitude))

    def approximately_equal(self, a: complex, b: complex) -> bool:
        """Component-wise comparison within the table tolerance."""
        tol = self.tolerance
        return abs(a.real - b.real) <= tol and abs(a.imag - b.imag) <= tol

    def approximately_zero(self, a: complex) -> bool:
        """True when both components of ``a`` are within tolerance of zero."""
        tol = self.tolerance
        return abs(a.real) <= tol and abs(a.imag) <= tol

    def exp_i(self, angle: float) -> ComplexValue:
        """Canonical ``exp(i * angle)``."""
        return self.lookup(cmath.exp(1j * angle))

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, int]:
        """Table occupancy and hit statistics (for diagnostics and benches)."""
        return {
            "entries": len(self._entries),
            "real_entries": len(self._reals),
            "real_hits": self._reals.hits,
            "real_misses": self._reals.misses,
        }
