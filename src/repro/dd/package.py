"""The decision-diagram package: construction, arithmetic, and measurement.

This is a Python re-implementation of the decision-diagram engine the paper
builds on (Zulehner/Hillmich/Wille's JKU package, reference [39]), providing
everything stochastic simulation needs:

* canonical construction of vector and matrix nodes (:meth:`DDPackage.make_vector_node`,
  :meth:`DDPackage.make_matrix_node`),
* DD arithmetic — addition, matrix-vector and matrix-matrix multiplication,
  Kronecker products, inner products — all memoised through compute tables,
* construction of (multi-)controlled gate DDs over the full register,
* measurement: single-qubit outcome probabilities, collapsing measurement,
  and O(n)-per-shot sampling of complete basis states,
* reference counting and garbage collection.

Normalisation schemes
---------------------
Vector nodes use the *sum-of-squares* scheme: outgoing weights ``(w0, w1)``
are scaled so ``|w0|^2 + |w1|^2 = 1`` and the first non-zero weight is real
and positive.  The scale factor is pushed into the incoming edge.  Two
consequences the simulator exploits heavily:

* the squared norm of the (sub-)state an edge represents is exactly
  ``|edge.weight|^2`` — so state norms (needed for the state-dependent
  amplitude-damping error of paper Example 6) are O(1) reads, and
* outcome probabilities factor along root-to-terminal paths, so sampling a
  complete measurement result costs O(n) per shot.

Matrix nodes use the classic QMDD scheme: weights are divided by the
leftmost weight of maximal magnitude, which becomes exactly 1.

Both schemes are canonical: sub-vectors/sub-matrices that are equal up to a
scalar map to the *same* node, which is what lets the unique table share
structure (paper Section IV-B).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import profile as _profile
from ..obs.metrics import MetricsRegistry
from .complex_table import ComplexTable, ComplexValue, DEFAULT_TOLERANCE
from .compute_table import ComputeTable
from .edge import Edge
from .node import TERMINAL_VAR, Node
from .unique_table import UniqueTable

__all__ = ["DDPackage"]

#: Relative band within which two child magnitudes count as tied when
#: choosing the phase-anchor child in :meth:`DDPackage.make_vector_node`.
#: Rounding perturbs magnitudes of scalar multiples by a few ulp (~1e-16
#: relative); anything produced by genuinely different amplitudes on the
#: grids we canonicalise differs by far more than this.
_PHASE_TIE_RTOL = 1e-9

# 2x2 projectors used for controlled-gate construction and measurement.
PROJ_ZERO = np.array([[1, 0], [0, 0]], dtype=complex)
PROJ_ONE = np.array([[0, 0], [0, 1]], dtype=complex)
IDENTITY_2X2 = np.eye(2, dtype=complex)


class DDPackage:
    """A self-contained decision-diagram engine for one simulation context.

    Parameters
    ----------
    num_qubits:
        Default register width for convenience constructors (``zero_state``,
        ``gate`` etc.).  Individual calls may override it.
    tolerance:
        Absolute tolerance for canonicalising complex edge weights.
    """

    def __init__(
        self,
        num_qubits: int,
        tolerance: float = DEFAULT_TOLERANCE,
        compute_table_size: int = 1 << 18,
    ) -> None:
        if num_qubits < 1:
            raise ValueError("num_qubits must be >= 1")
        self.num_qubits = num_qubits
        self.complex_table = ComplexTable(tolerance)
        self.vector_table = UniqueTable()
        self.matrix_table = UniqueTable()
        self.terminal = Node(TERMINAL_VAR, ())
        self.zero_edge = Edge(self.terminal, self.complex_table.zero)
        self.one_edge = Edge(self.terminal, self.complex_table.one)
        size = compute_table_size
        self._add_table: ComputeTable[Edge] = ComputeTable("add", size)
        self._mat_vec_table: ComputeTable[Edge] = ComputeTable("mat_vec", size)
        self._mat_mat_table: ComputeTable[Edge] = ComputeTable("mat_mat", size)
        self._inner_table: ComputeTable[ComplexValue] = ComputeTable("inner", size)
        self._gate_cache: Dict[tuple, Edge] = {}
        #: Engine-local observability registry (GC sweeps, node growth, ...).
        #: Table hit/miss counters live in the tables themselves and are
        #: folded in by :meth:`metrics_snapshot`.
        self.metrics = MetricsRegistry()
        # Cached counter handle: garbage_collect() runs after every gate, so
        # the skip tally must not pay a registry lookup each time.
        self._gc_skipped = self.metrics.counter("dd.gc.skipped")

    # ------------------------------------------------------------------
    # Node construction and normalisation
    # ------------------------------------------------------------------

    def _canonical_child(self, edge: Edge, weight: ComplexValue) -> Edge:
        """Build a child edge, redirecting zero weights to the zero edge."""
        if weight.is_zero():
            return self.zero_edge
        return Edge(edge.node, weight)

    def make_vector_node(self, var: int, e0: Edge, e1: Edge) -> Edge:
        """Create a normalised vector node deciding qubit ``var``.

        ``e0``/``e1`` are the sub-state edges for ``var`` being |0>/|1>.
        Returns the (possibly terminal-zero) normalised edge to the node.
        """
        ct = self.complex_table
        w0, w1 = e0.weight, e1.weight
        if w0.is_zero() and w1.is_zero():
            return self.zero_edge
        mag2_0 = w0.magnitude_squared()
        mag2_1 = w1.magnitude_squared()
        norm = math.sqrt(mag2_0 + mag2_1)
        # Anchor the common phase on the larger-magnitude child: a leading
        # weight with |w| near the canonicalisation tolerance carries O(1)
        # relative noise in its components, and dividing by it would rotate
        # the whole sub-state by that noise.  The comparison is banded by a
        # *relative* tolerance (resolving to w0, which keeps the historical
        # first-non-zero convention for the equal-magnitude case): an exact
        # `>=` is not scale-invariant — mathematically equal magnitudes come
        # out a last-ulp apart, and which side wins flips between a vector
        # and its scalar multiples, anchoring their phases on different
        # children and breaking node sharing (the canonicity-under-scaling
        # hypothesis counterexample).  Within the band both children are
        # equally large, so the stability rationale is indifferent.
        reference = w0 if mag2_1 - mag2_0 <= _PHASE_TIE_RTOL * mag2_1 else w1
        phase = reference.value / reference.magnitude()
        common = norm * phase
        new_w0 = ct.lookup(w0.value / common) if not w0.is_zero() else ct.zero
        new_w1 = ct.lookup(w1.value / common) if not w1.is_zero() else ct.zero
        child0 = self._canonical_child(e0, new_w0)
        child1 = self._canonical_child(e1, new_w1)
        node = self.vector_table.lookup(var, (child0, child1))
        return Edge(node, ct.lookup(common))

    def make_matrix_node(self, var: int, edges: Sequence[Edge]) -> Edge:
        """Create a normalised matrix node deciding qubit ``var``.

        ``edges`` are the four quadrant edges in row-major order (top-left,
        top-right, bottom-left, bottom-right).
        """
        ct = self.complex_table
        weights = [e.weight for e in edges]
        mags = [w.magnitude() for w in weights]
        max_mag = max(mags)
        if max_mag == 0.0:
            return self.zero_edge
        # Leftmost weight of (numerically) maximal magnitude becomes 1.
        pivot_index = next(
            i for i, m in enumerate(mags) if m >= max_mag - ct.tolerance
        )
        pivot = weights[pivot_index]
        new_children: List[Edge] = []
        for i, (edge, weight) in enumerate(zip(edges, weights)):
            if i == pivot_index:
                new_children.append(Edge(edge.node, ct.one))
            elif weight.is_zero():
                new_children.append(self.zero_edge)
            else:
                new_children.append(
                    self._canonical_child(edge, ct.lookup(weight.value / pivot.value))
                )
        node = self.matrix_table.lookup(var, tuple(new_children))
        return Edge(node, pivot)

    # ------------------------------------------------------------------
    # State constructors
    # ------------------------------------------------------------------

    def zero_state(self, num_qubits: Optional[int] = None) -> Edge:
        """DD for the all-zeros basis state |0...0>."""
        n = self.num_qubits if num_qubits is None else num_qubits
        return self.basis_state([0] * n)

    def basis_state(self, bits: Sequence[int]) -> Edge:
        """DD for the computational basis state given by ``bits``.

        ``bits[0]`` is the most significant qubit ``q0`` (the top DD level),
        matching the paper's register convention.
        """
        edge = self.one_edge
        for var in range(len(bits) - 1, -1, -1):
            if bits[var]:
                edge = self.make_vector_node(var, self.zero_edge, edge)
            else:
                edge = self.make_vector_node(var, edge, self.zero_edge)
        return edge

    def product_state(self, qubit_states: Sequence[Tuple[complex, complex]]) -> Edge:
        """DD for a tensor product of single-qubit states ``(alpha, beta)``."""
        ct = self.complex_table
        edge = self.one_edge
        for var in range(len(qubit_states) - 1, -1, -1):
            alpha, beta = qubit_states[var]
            e0 = edge.weighted(ct, ct.lookup(complex(alpha)))
            e1 = edge.weighted(ct, ct.lookup(complex(beta)))
            edge = self.make_vector_node(var, e0, e1)
        return edge

    def from_state_vector(self, amplitudes: np.ndarray) -> Edge:
        """Build a vector DD from a dense state vector of length ``2**n``."""
        amplitudes = np.asarray(amplitudes, dtype=complex).reshape(-1)
        n = _log2_size(len(amplitudes), "state vector")
        return self._vector_from_array(amplitudes, 0, n)

    def _vector_from_array(self, segment: np.ndarray, var: int, n: int) -> Edge:
        ct = self.complex_table
        if var == n:
            value = complex(segment[0])
            if ct.approximately_zero(value):
                return self.zero_edge
            return Edge(self.terminal, ct.lookup(value))
        half = len(segment) // 2
        e0 = self._vector_from_array(segment[:half], var + 1, n)
        e1 = self._vector_from_array(segment[half:], var + 1, n)
        return self.make_vector_node(var, e0, e1)

    def to_state_vector(self, edge: Edge, num_qubits: Optional[int] = None) -> np.ndarray:
        """Expand a vector DD into a dense state vector (exponential; tests only)."""
        n = self.num_qubits if num_qubits is None else num_qubits
        out = np.zeros(2**n, dtype=complex)
        self._fill_vector(edge, 0, n, 0, 1.0 + 0.0j, out)
        return out

    def _fill_vector(
        self, edge: Edge, var: int, n: int, offset: int, factor: complex, out: np.ndarray
    ) -> None:
        if edge.weight.is_zero():
            return
        factor = factor * edge.weight.value
        if edge.is_terminal:
            # A non-zero terminal edge above the bottom level cannot occur in
            # well-formed vector DDs; it would mean a level was skipped.
            if var != n:
                raise ValueError("malformed vector DD: early non-zero terminal")
            out[offset] = factor
            return
        half = 2 ** (n - var - 1)
        node = edge.node
        self._fill_vector(node.edges[0], var + 1, n, offset, factor, out)
        self._fill_vector(node.edges[1], var + 1, n, offset + half, factor, out)

    # ------------------------------------------------------------------
    # Matrix constructors
    # ------------------------------------------------------------------

    def identity(self, num_qubits: Optional[int] = None) -> Edge:
        """Matrix DD of the identity over ``num_qubits`` qubits."""
        n = self.num_qubits if num_qubits is None else num_qubits
        edge = self.one_edge
        for var in range(n - 1, -1, -1):
            edge = self.make_matrix_node(
                var, (edge, self.zero_edge, self.zero_edge, edge)
            )
        return edge

    def tensor_operator(self, factors: Sequence[Optional[np.ndarray]]) -> Edge:
        """Matrix DD of ``factors[0] (x) factors[1] (x) ...``.

        ``None`` entries stand for 2x2 identities.  ``factors[0]`` acts on
        the most significant qubit ``q0``.
        """
        ct = self.complex_table
        edge = self.one_edge
        for var in range(len(factors) - 1, -1, -1):
            matrix = factors[var]
            if matrix is None:
                edge = self.make_matrix_node(
                    var, (edge, self.zero_edge, self.zero_edge, edge)
                )
                continue
            matrix = np.asarray(matrix, dtype=complex)
            if matrix.shape != (2, 2):
                raise ValueError("tensor factors must be 2x2 matrices")
            children = []
            for row in range(2):
                for col in range(2):
                    weight = ct.lookup(complex(matrix[row, col]))
                    children.append(edge.weighted(ct, weight) if not weight.is_zero() else self.zero_edge)
            edge = self.make_matrix_node(var, tuple(children))
        return edge

    def single_qubit_gate(
        self, matrix: np.ndarray, target: int, num_qubits: Optional[int] = None
    ) -> Edge:
        """Matrix DD of a single-qubit gate on ``target`` within the register."""
        n = self.num_qubits if num_qubits is None else num_qubits
        factors: List[Optional[np.ndarray]] = [None] * n
        factors[target] = np.asarray(matrix, dtype=complex)
        return self.tensor_operator(factors)

    def controlled_gate(
        self,
        matrix: np.ndarray,
        target: int,
        controls: Dict[int, int],
        num_qubits: Optional[int] = None,
    ) -> Edge:
        """Matrix DD of a (multi-)controlled single-qubit gate.

        ``controls`` maps control qubits to the basis value (0 or 1) that
        activates the gate.  The construction follows the decomposition::

            Op = P_ctrl (x) U (x) I  +  (I^n - P_ctrl (x) I (x) I)

        where both tensor terms are elementary products, so the whole
        operator is two linear-size DDs plus two DD additions.
        """
        n = self.num_qubits if num_qubits is None else num_qubits
        if not controls:
            return self.single_qubit_gate(matrix, target, n)
        if target in controls:
            raise ValueError("target qubit cannot also be a control")
        active: List[Optional[np.ndarray]] = [None] * n
        passive: List[Optional[np.ndarray]] = [None] * n
        for qubit, value in controls.items():
            projector = PROJ_ONE if value else PROJ_ZERO
            active[qubit] = projector
            passive[qubit] = projector
        active[target] = np.asarray(matrix, dtype=complex)
        t_active = self.tensor_operator(active)
        t_passive = self.tensor_operator(passive)
        rest = self.add(self.identity(n), self.negate(t_passive))
        return self.add(t_active, rest)

    def gate(
        self,
        matrix: np.ndarray,
        target: int,
        controls: Optional[Dict[int, int]] = None,
        num_qubits: Optional[int] = None,
    ) -> Edge:
        """Cached gate-DD constructor (the hot path of circuit simulation).

        The cache key uses the *bytes* of the 2x2 matrix, so numerically
        identical gates (e.g. every H in a circuit) share one DD.
        """
        n = self.num_qubits if num_qubits is None else num_qubits
        matrix = np.ascontiguousarray(matrix, dtype=complex)
        controls = controls or {}
        key = (matrix.tobytes(), target, tuple(sorted(controls.items())), n)
        cached = self._gate_cache.get(key)
        if cached is not None:
            return cached
        edge = self.controlled_gate(matrix, target, controls, n)
        # Pin gate DDs so garbage collection never drops them mid-circuit.
        self.matrix_table.inc_ref(edge)
        self._gate_cache[key] = edge
        return edge

    def gate_cache_size(self) -> int:
        """Number of distinct gate DDs built so far (plan-compile bookkeeping)."""
        return len(self._gate_cache)

    def from_operator_matrix(self, matrix: np.ndarray) -> Edge:
        """Build a matrix DD from a dense ``2**n x 2**n`` operator."""
        matrix = np.asarray(matrix, dtype=complex)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("operator must be a square matrix")
        n = _log2_size(matrix.shape[0], "operator")
        return self._matrix_from_array(matrix, 0, n)

    def _matrix_from_array(self, block: np.ndarray, var: int, n: int) -> Edge:
        ct = self.complex_table
        if var == n:
            value = complex(block[0, 0])
            if ct.approximately_zero(value):
                return self.zero_edge
            return Edge(self.terminal, ct.lookup(value))
        half = block.shape[0] // 2
        quadrants = (
            block[:half, :half],
            block[:half, half:],
            block[half:, :half],
            block[half:, half:],
        )
        children = tuple(self._matrix_from_array(q, var + 1, n) for q in quadrants)
        return self.make_matrix_node(var, children)

    def to_operator_matrix(self, edge: Edge, num_qubits: Optional[int] = None) -> np.ndarray:
        """Expand a matrix DD into a dense operator (exponential; tests only)."""
        n = self.num_qubits if num_qubits is None else num_qubits
        out = np.zeros((2**n, 2**n), dtype=complex)
        self._fill_matrix(edge, 0, n, 0, 0, 1.0 + 0.0j, out)
        return out

    def _fill_matrix(
        self,
        edge: Edge,
        var: int,
        n: int,
        row: int,
        col: int,
        factor: complex,
        out: np.ndarray,
    ) -> None:
        if edge.weight.is_zero():
            return
        factor = factor * edge.weight.value
        if edge.is_terminal:
            if var != n:
                raise ValueError("malformed matrix DD: early non-zero terminal")
            out[row, col] = factor
            return
        half = 2 ** (n - var - 1)
        node = edge.node
        self._fill_matrix(node.edges[0], var + 1, n, row, col, factor, out)
        self._fill_matrix(node.edges[1], var + 1, n, row, col + half, factor, out)
        self._fill_matrix(node.edges[2], var + 1, n, row + half, col, factor, out)
        self._fill_matrix(node.edges[3], var + 1, n, row + half, col + half, factor, out)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------

    def negate(self, edge: Edge) -> Edge:
        """Return the DD scaled by -1 (weight flip on the root edge)."""
        return self.scale(edge, -1.0 + 0.0j)

    def scale(self, edge: Edge, factor: complex) -> Edge:
        """Return the DD scaled by an arbitrary complex ``factor``."""
        ct = self.complex_table
        weight = ct.multiply(edge.weight, ct.lookup(complex(factor)))
        if weight.is_zero():
            return self.zero_edge
        return Edge(edge.node, weight)

    def add(self, e1: Edge, e2: Edge) -> Edge:
        """Pointwise sum of two vector DDs or two matrix DDs.

        Memoised on ``(node1, node2, w2/w1)`` — the common factor ``w1`` is
        stripped so scalar multiples of previously summed operands hit the
        cache.

        This (like every public arithmetic entry point) is a thin shim over
        the recursive body so the hot-loop profiler can time whole top-level
        operations: recursion goes through the private ``_add`` directly and
        stays uninstrumented, and when profiling is off the shim costs one
        ``is None`` test.
        """
        prof = _profile.ACTIVE
        if prof is None:
            return self._add(e1, e2)
        token = prof.op_begin("add")
        try:
            return self._add(e1, e2)
        finally:
            prof.op_end(token, "add")

    def _add(self, e1: Edge, e2: Edge) -> Edge:
        if e1.is_zero:
            return e2
        if e2.is_zero:
            return e1
        ct = self.complex_table
        if e1.is_terminal and e2.is_terminal:
            return Edge(self.terminal, ct.add(e1.weight, e2.weight))
        if e1.is_terminal or e2.is_terminal:
            raise ValueError("cannot add DDs of mismatched depth")
        if e1.node.var != e2.node.var:
            raise ValueError(
                f"cannot add DDs at different levels ({e1.node.var} vs {e2.node.var})"
            )
        ratio = ct.divide(e2.weight, e1.weight)
        key = (id(e1.node), id(e2.node), id(ratio))
        cached = self._add_table.lookup(key)
        if cached is None:
            node1, node2 = e1.node, e2.node
            children = tuple(
                self._add(node1.edges[i], node2.edges[i].weighted(ct, ratio))
                for i in range(len(node1.edges))
            )
            if len(children) == 2:
                cached = self.make_vector_node(node1.var, children[0], children[1])
            else:
                cached = self.make_matrix_node(node1.var, children)
            self._add_table.insert(key, cached)
        return cached.weighted(ct, e1.weight)

    def multiply(self, operator: Edge, state: Edge) -> Edge:
        """Matrix-vector product: apply an operator DD to a state DD."""
        prof = _profile.ACTIVE
        if prof is None:
            return self._multiply(operator, state)
        token = prof.op_begin("multiply")
        try:
            return self._multiply(operator, state)
        finally:
            prof.op_end(token, "multiply")

    def _multiply(self, operator: Edge, state: Edge) -> Edge:
        if operator.is_zero or state.is_zero:
            return self.zero_edge
        ct = self.complex_table
        weight = ct.multiply(operator.weight, state.weight)
        if operator.is_terminal and state.is_terminal:
            return Edge(self.terminal, weight)
        if operator.is_terminal or state.is_terminal:
            raise ValueError("cannot multiply DDs of mismatched depth")
        if operator.node.var != state.node.var:
            raise ValueError(
                "operator and state DDs decide different qubits at the same level"
            )
        key = (id(operator.node), id(state.node))
        cached = self._mat_vec_table.lookup(key)
        if cached is None:
            m, v = operator.node, state.node
            var = m.var
            r0 = self._add(
                self._multiply(m.edges[0], v.edges[0]),
                self._multiply(m.edges[1], v.edges[1]),
            )
            r1 = self._add(
                self._multiply(m.edges[2], v.edges[0]),
                self._multiply(m.edges[3], v.edges[1]),
            )
            cached = self.make_vector_node(var, r0, r1)
            self._mat_vec_table.insert(key, cached)
        return cached.weighted(ct, weight)

    def multiply_matrices(self, left: Edge, right: Edge) -> Edge:
        """Matrix-matrix product ``left @ right`` of two operator DDs."""
        prof = _profile.ACTIVE
        if prof is None:
            return self._multiply_matrices(left, right)
        token = prof.op_begin("multiply_matrices")
        try:
            return self._multiply_matrices(left, right)
        finally:
            prof.op_end(token, "multiply_matrices")

    def _multiply_matrices(self, left: Edge, right: Edge) -> Edge:
        if left.is_zero or right.is_zero:
            return self.zero_edge
        ct = self.complex_table
        weight = ct.multiply(left.weight, right.weight)
        if left.is_terminal and right.is_terminal:
            return Edge(self.terminal, weight)
        if left.is_terminal or right.is_terminal:
            raise ValueError("cannot multiply matrix DDs of mismatched depth")
        if left.node.var != right.node.var:
            raise ValueError("matrix DDs decide different qubits at the same level")
        key = (id(left.node), id(right.node))
        cached = self._mat_mat_table.lookup(key)
        if cached is None:
            a, b = left.node, right.node
            var = a.var
            children = []
            for row in range(2):
                for col in range(2):
                    children.append(
                        self._add(
                            self._multiply_matrices(a.edges[2 * row], b.edges[col]),
                            self._multiply_matrices(a.edges[2 * row + 1], b.edges[2 + col]),
                        )
                    )
            cached = self.make_matrix_node(var, tuple(children))
            self._mat_mat_table.insert(key, cached)
        return cached.weighted(ct, weight)

    def kron(self, top: Edge, bottom: Edge, bottom_qubits: int) -> Edge:
        """Kronecker product placing ``top`` above ``bottom``.

        ``bottom`` must span exactly ``bottom_qubits`` qubits starting at
        level 0; its levels are shifted down below ``top``.  Works for both
        vector and matrix DDs (operands must be of the same kind).
        """
        prof = _profile.ACTIVE
        token = prof.op_begin("kron") if prof is not None else None
        try:
            top_qubits = self._depth(top)
            shifted = self._shift_levels(bottom, top_qubits, {})
            return self._attach_below(top, shifted, {})
        finally:
            if prof is not None:
                prof.op_end(token, "kron")

    def _depth(self, edge: Edge) -> int:
        depth = 0
        node = edge.node
        while not node.is_terminal:
            depth = max(depth, node.var + 1)
            next_node = None
            for child in node.edges:
                if not child.node.is_terminal:
                    next_node = child.node
                    break
            if next_node is None:
                break
            node = next_node
        return depth

    def _shift_levels(self, edge: Edge, offset: int, memo: Dict[int, Edge]) -> Edge:
        if edge.is_terminal:
            return edge
        cached = memo.get(id(edge.node))
        if cached is None:
            node = edge.node
            children = tuple(
                self._shift_levels(child, offset, memo) for child in node.edges
            )
            if len(children) == 2:
                cached = self.make_vector_node(node.var + offset, children[0], children[1])
            else:
                cached = self.make_matrix_node(node.var + offset, children)
            memo[id(node)] = cached
        return cached.weighted(self.complex_table, edge.weight)

    def _attach_below(self, top: Edge, bottom: Edge, memo: Dict[int, Edge]) -> Edge:
        if top.is_zero:
            return self.zero_edge
        if top.is_terminal:
            return bottom.weighted(self.complex_table, top.weight)
        cached = memo.get(id(top.node))
        if cached is None:
            node = top.node
            children = tuple(
                self._attach_below(child, bottom, memo) for child in node.edges
            )
            if len(children) == 2:
                cached = self.make_vector_node(node.var, children[0], children[1])
            else:
                cached = self.make_matrix_node(node.var, children)
            memo[id(node)] = cached
        return cached.weighted(self.complex_table, top.weight)

    def conjugate_transpose(self, edge: Edge) -> Edge:
        """Adjoint of a matrix DD (conjugate weights, transpose quadrants)."""
        return self._adjoint(edge, {})

    def _adjoint(self, edge: Edge, memo: Dict[int, Edge]) -> Edge:
        ct = self.complex_table
        if edge.is_terminal:
            return Edge(self.terminal, ct.conjugate(edge.weight))
        cached = memo.get(id(edge.node))
        if cached is None:
            node = edge.node
            children = (
                self._adjoint(node.edges[0], memo),
                self._adjoint(node.edges[2], memo),
                self._adjoint(node.edges[1], memo),
                self._adjoint(node.edges[3], memo),
            )
            cached = self.make_matrix_node(node.var, children)
            memo[id(node)] = cached
        return cached.weighted(ct, ct.conjugate(edge.weight))

    # ------------------------------------------------------------------
    # Inner products, norms, fidelities
    # ------------------------------------------------------------------

    def inner_product(self, bra: Edge, ket: Edge) -> complex:
        """Sesquilinear inner product ``<bra|ket>`` of two vector DDs."""
        if bra.is_zero or ket.is_zero:
            return 0.0 + 0.0j
        ct = self.complex_table
        factor = ct.conjugate(bra.weight).value * ket.weight.value
        prof = _profile.ACTIVE
        token = prof.op_begin("inner_product") if prof is not None else None
        try:
            return factor * self._inner_nodes(bra.node, ket.node)
        finally:
            if prof is not None:
                prof.op_end(token, "inner_product")

    def _inner_nodes(self, a: Node, b: Node) -> complex:
        if a.is_terminal and b.is_terminal:
            return 1.0 + 0.0j
        if a.is_terminal or b.is_terminal:
            raise ValueError("cannot take inner product of DDs of mismatched depth")
        key = (id(a), id(b))
        cached = self._inner_table.lookup(key)
        if cached is not None:
            return complex(cached)
        total = 0.0 + 0.0j
        for ea, eb in zip(a.edges, b.edges):
            if ea.weight.is_zero() or eb.weight.is_zero():
                continue
            factor = ea.weight.value.conjugate() * eb.weight.value
            total += factor * self._inner_nodes(ea.node, eb.node)
        # Return the *canonicalised* value, not the raw total: the memo stores
        # the snapped representative, so returning ``total`` here would make
        # the first (cold) computation differ from every later memo hit by up
        # to the complex-table tolerance — a history-dependent wobble the
        # prefix-sharing equivalence gate (and chunked-vs-serial estimate
        # aggregation) cannot tolerate.
        snapped = complex(self.complex_table.lookup(total))
        self._inner_table.insert(key, snapped)
        return snapped

    def squared_norm(self, edge: Edge) -> float:
        """Squared norm of the state an edge represents.

        With sum-of-squares normalisation this is just ``|weight|^2`` — the
        O(1) read the stochastic amplitude-damping insertion relies on.
        """
        return edge.weight.magnitude_squared()

    def fidelity(self, a: Edge, b: Edge) -> float:
        """Quadratic overlap ``|<a|b>|^2`` (paper's property template, Eq. 1)."""
        overlap = self.inner_product(a, b)
        return abs(overlap) ** 2

    def normalize(self, edge: Edge) -> Edge:
        """Rescale the root weight so the state has unit norm."""
        prof = _profile.ACTIVE
        token = prof.op_begin("normalize") if prof is not None else None
        try:
            norm = math.sqrt(self.squared_norm(edge))
            if norm == 0.0:
                raise ValueError("cannot normalise the zero vector")
            return self.scale(edge, 1.0 / norm)
        finally:
            if prof is not None:
                prof.op_end(token, "normalize")

    def norm_drift(self, edge: Edge) -> float:
        """Absolute deviation of the squared norm from unity.

        O(1) like :meth:`squared_norm` — cheap enough to check after every
        trajectory, which is exactly what the runner's numerical guard does
        (docs/ROBUSTNESS.md).
        """
        return abs(self.squared_norm(edge) - 1.0)

    def iterate_nonzero_amplitudes(self, edge: Edge):
        """Yield ``(bitstring, amplitude)`` for every non-zero basis state.

        Walks only non-zero paths, so a sparse state over many qubits is
        enumerated in time proportional to its support rather than ``2**n``.
        Bitstrings are ordered lexicographically (qubit 0 leftmost).
        """
        if edge.weight.is_zero():
            return

        def walk(node: Node, prefix: str, factor: complex):
            if node.is_terminal:
                yield prefix, factor
                return
            for bit, child in enumerate(node.edges):
                if child.weight.is_zero():
                    continue
                yield from walk(
                    child.node, prefix + str(bit), factor * child.weight.value
                )

        yield from walk(edge.node, "", edge.weight.value)

    def get_amplitude(self, edge: Edge, basis_state: Sequence[int]) -> complex:
        """Amplitude of one basis state (product of weights along the path)."""
        value = 1.0 + 0.0j
        current = edge
        for bit in basis_state:
            if current.weight.is_zero():
                return 0.0 + 0.0j
            value *= current.weight.value
            current = current.node.edges[1 if bit else 0]
        if current.weight.is_zero():
            return 0.0 + 0.0j
        return value * current.weight.value

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------

    def probability_of_one(self, edge: Edge, qubit: int) -> float:
        """Probability that measuring ``qubit`` yields 1 (state unchanged)."""
        memo: Dict[int, float] = {}

        def mass(node: Node) -> float:
            if node.is_terminal:
                raise ValueError("qubit index beyond DD depth")
            cached = memo.get(id(node))
            if cached is not None:
                return cached
            if node.var == qubit:
                result = node.edges[1].weight.magnitude_squared()
            else:
                result = 0.0
                for child in node.edges:
                    if child.weight.is_zero():
                        continue
                    result += child.weight.magnitude_squared() * mass(child.node)
            memo[id(node)] = result
            return result

        if edge.is_zero:
            raise ValueError("cannot measure the zero vector")
        total = self.squared_norm(edge)
        return mass(edge.node) * edge.weight.magnitude_squared() / total

    def measure_qubit(
        self, edge: Edge, qubit: int, rng, collapse: bool = True
    ) -> Tuple[int, Edge, float]:
        """Measure one qubit: returns ``(outcome, post_state, p_outcome)``.

        The post-measurement state is collapsed (projector application plus
        renormalisation) when ``collapse`` is set, else the input edge is
        returned unchanged.
        """
        p_one = self.probability_of_one(edge, qubit)
        outcome = 1 if rng.random() < p_one else 0
        probability = p_one if outcome else 1.0 - p_one
        if not collapse:
            return outcome, edge, probability
        projector = PROJ_ONE if outcome else PROJ_ZERO
        n = self._depth(edge)
        collapsed = self.multiply(self.gate(projector, qubit, num_qubits=n), edge)
        collapsed = self.normalize(collapsed)
        return outcome, collapsed, probability

    def sample_basis_state(self, edge: Edge, rng) -> str:
        """Draw one complete measurement outcome in O(n).

        Exploits the sum-of-squares invariant: at each node the squared
        child-edge weights are the conditional outcome probabilities given
        the path so far.  Returns a bitstring with ``q0`` leftmost.
        """
        bits: List[str] = []
        node = edge.node
        while not node.is_terminal:
            p0 = node.edges[0].weight.magnitude_squared()
            p1 = node.edges[1].weight.magnitude_squared()
            total = p0 + p1
            if rng.random() * total < p0:
                bits.append("0")
                node = node.edges[0].node
            else:
                bits.append("1")
                node = node.edges[1].node
        return "".join(bits)

    def sample_counts(self, edge: Edge, shots: int, rng) -> Dict[str, int]:
        """Sample ``shots`` measurement outcomes into a counts histogram.

        ``shots == 1`` draws one root-to-terminal walk exactly as
        :meth:`sample_basis_state` does — the documented per-trajectory rng
        stream (one uniform per DD level) that the stochastic runner's
        reproducibility guarantees depend on.  Larger budgets use a single
        recursive *multinomial descent*: at each node one binomial draw
        splits the remaining shots between the two children, so the cost is
        O(support size) instead of O(shots x n) independent walks.
        """
        if shots <= 0:
            return {}
        if shots == 1:
            outcome = self.sample_basis_state(edge, rng)
            return {outcome: 1}
        counts: Dict[str, int] = {}
        self._sample_multinomial(edge.node, shots, rng, [], counts)
        return counts

    def _sample_multinomial(
        self, node: Node, shots: int, rng, prefix: List[str], counts: Dict[str, int]
    ) -> None:
        """Split ``shots`` down the DD, 0-branch first (deterministic order)."""
        base = len(prefix)
        while not node.is_terminal:
            p0 = node.edges[0].weight.magnitude_squared()
            p1 = node.edges[1].weight.magnitude_squared()
            taken0 = _binomial(rng, shots, p0 / (p0 + p1))
            if taken0 == shots:
                prefix.append("0")
                node = node.edges[0].node
                continue
            if taken0:
                prefix.append("0")
                self._sample_multinomial(node.edges[0].node, taken0, rng, prefix, counts)
                prefix.pop()
            shots -= taken0
            prefix.append("1")
            node = node.edges[1].node
        outcome = "".join(prefix)
        del prefix[base:]
        counts[outcome] = counts.get(outcome, 0) + shots

    # ------------------------------------------------------------------
    # Reference counting and garbage collection
    # ------------------------------------------------------------------

    def inc_ref(self, edge: Edge) -> Edge:
        """Pin a DD (vector or matrix) against garbage collection."""
        table = self._table_for(edge)
        if table is not None:
            table.inc_ref(edge)
        return edge

    def dec_ref(self, edge: Edge) -> None:
        """Release a previously pinned DD."""
        table = self._table_for(edge)
        if table is not None:
            table.dec_ref(edge)

    def _table_for(self, edge: Edge) -> Optional[UniqueTable]:
        if edge.node.is_terminal:
            return None
        return self.vector_table if edge.node.is_vector_node else self.matrix_table

    def garbage_collect(self, force: bool = False) -> int:
        """Collect unreferenced nodes; clears the compute tables if anything ran.

        Without ``force`` this is a *paced* collection: it only sweeps when a
        unique table's dead-node population exceeds its adaptive watermark
        (see :meth:`UniqueTable.should_collect`), and otherwise counts a
        ``dd.gc.skipped`` metric and returns immediately — the O(1) check the
        per-gate call site in :meth:`DDBackend._replace_state` relies on.
        Span boundaries still pass ``force=True`` to bound memory between
        jobs regardless of the watermark.
        """
        if not force and not (
            self.vector_table.should_collect() or self.matrix_table.should_collect()
        ):
            self._gc_skipped.inc()
            return 0
        prof = _profile.ACTIVE
        token = prof.op_begin("gc") if prof is not None else None
        try:
            collected = self.vector_table.garbage_collect()
            collected += self.matrix_table.garbage_collect()
            for table in (self._add_table, self._mat_vec_table, self._mat_mat_table, self._inner_table):
                table.clear()
            self.metrics.counter("dd.gc.sweeps").inc()
            self.metrics.counter("dd.gc.reclaimed_nodes").inc(collected)
            return collected
        finally:
            if prof is not None:
                prof.op_end(token, "gc")

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def node_count(self, edge: Edge) -> int:
        """Number of distinct nodes reachable from ``edge`` (excl. terminal)."""
        seen: set = set()

        def walk(node: Node) -> None:
            if node.is_terminal or id(node) in seen:
                return
            seen.add(id(node))
            for child in node.edges:
                walk(child.node)

        walk(edge.node)
        return len(seen)

    def stats(self) -> Dict[str, Dict]:
        """Aggregated statistics of all internal tables."""
        return {
            "complex_table": self.complex_table.stats(),
            "vector_table": self.vector_table.stats(),
            "matrix_table": self.matrix_table.stats(),
            "add": self._add_table.stats(),
            "mat_vec": self._mat_vec_table.stats(),
            "mat_mat": self._mat_mat_table.stats(),
            "inner": self._inner_table.stats(),
        }

    def metrics_snapshot(self) -> Dict[str, Dict[str, object]]:
        """One observability snapshot covering every engine table.

        Extends the package's own registry (GC sweeps, node growth) with
        the hit/miss counters the unique, compute, and complex tables keep
        themselves, under the canonical ``dd.*`` metric names.  Callers
        wanting per-chunk numbers on a warm package should snapshot before
        and after and take :func:`repro.obs.delta_snapshots`.
        """
        snapshot = self.metrics.snapshot()
        counters = snapshot["counters"]
        gauges = snapshot["gauges"]
        for prefix, table in (
            ("dd.unique.vector", self.vector_table),
            ("dd.unique.matrix", self.matrix_table),
        ):
            counters[f"{prefix}.hits"] = table.hits
            counters[f"{prefix}.misses"] = table.misses
            counters[f"{prefix}.collections"] = table.collections
            gauges[f"{prefix}.entries"] = len(table)
        for name, table in (
            ("add", self._add_table),
            ("mat_vec", self._mat_vec_table),
            ("mat_mat", self._mat_mat_table),
            ("inner", self._inner_table),
        ):
            counters[f"dd.compute.{name}.hits"] = table.hits
            counters[f"dd.compute.{name}.misses"] = table.misses
            counters[f"dd.compute.{name}.evictions"] = table.evictions
            gauges[f"dd.compute.{name}.entries"] = len(table)
        complex_stats = self.complex_table.stats()
        counters["dd.complex.real.hits"] = complex_stats["real_hits"]
        counters["dd.complex.real.misses"] = complex_stats["real_misses"]
        gauges["dd.complex.entries"] = complex_stats["entries"]
        return snapshot


def _log2_size(size: int, what: str) -> int:
    """Validate a power-of-two dimension and return its exponent."""
    n = size.bit_length() - 1
    if size <= 0 or 2**n != size:
        raise ValueError(f"{what} dimension must be a power of two, got {size}")
    return n


#: Below this trial count a Bernoulli sum beats the lgamma machinery.
_BINOMIAL_SMALL_N = 32


def _binomial(rng, n: int, p: float) -> int:
    """Draw Binomial(n, p) from ``rng``, deterministically for a given stream.

    Small ``n`` sums Bernoulli trials directly.  Larger ``n`` consumes one
    uniform and inverts the CDF starting at the distribution's mode and
    expanding outward, so the expected number of pmf terms evaluated is
    O(sqrt(n p (1-p))) rather than O(n).  Any fixed enumeration order of the
    support yields an exact sampler, and mode-outward visits the bulk of the
    mass first.
    """
    if p <= 0.0:
        return 0
    if p >= 1.0:
        return n
    if n < _BINOMIAL_SMALL_N:
        hits = 0
        for _ in range(n):
            if rng.random() < p:
                hits += 1
        return hits
    log_p = math.log(p)
    log_q = math.log1p(-p)
    log_n_fact = math.lgamma(n + 1)

    def pmf(k: int) -> float:
        return math.exp(
            log_n_fact
            - math.lgamma(k + 1)
            - math.lgamma(n - k + 1)
            + k * log_p
            + (n - k) * log_q
        )

    u = rng.random()
    mode = int((n + 1) * p)
    if mode > n:
        mode = n
    cumulative = pmf(mode)
    if u < cumulative:
        return mode
    low, high = mode - 1, mode + 1
    last = mode
    while low >= 0 or high <= n:
        if high <= n:
            cumulative += pmf(high)
            last = high
            if u < cumulative:
                return high
            high += 1
        if low >= 0:
            cumulative += pmf(low)
            last = low
            if u < cumulative:
                return low
            low -= 1
    # Floating-point round-off can leave a sliver of mass unassigned; the
    # outermost visited value absorbs it.
    return last
