"""Hash-consing unique table with reference counting and garbage collection.

The unique table guarantees *canonicity*: whenever the package wants a node
``(var, edges)``, the table either returns an already existing structurally
identical node or stores the fresh one.  Structurally identical sub-vectors /
sub-matrices are therefore represented by one shared node, which is what
makes decision diagrams compact (paper, Section IV-B).

The table also implements the reference-counting scheme of the JKU package:

* ``inc_ref`` / ``dec_ref`` walk an edge's sub-DAG adjusting node counts.
  Simulators keep exactly the *live* states/operators referenced.
* :meth:`UniqueTable.garbage_collect` drops nodes whose count is zero.  The
  package clears its compute tables afterwards because memoised results may
  reference collected nodes.
* The table tracks its *dead* population (nodes with a zero reference
  count) incrementally, so :meth:`should_collect` is a watermark on actual
  garbage rather than on raw table size — a table full of pinned gate DDs
  and live checkpoints never triggers pointless sweeps.

Garbage collection is optional for correctness in Python (the interpreter
would reclaim unreachable nodes if the table did not hold strong references)
but essential for *memory bounds* during long stochastic runs: without it
the table grows with every intermediate state of every trajectory.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from .edge import Edge
from .node import TERMINAL_VAR, Node

__all__ = ["UniqueTable"]


class UniqueTable:
    """Unique table for either vector or matrix nodes."""

    def __init__(self, gc_initial_limit: int = 65536) -> None:
        self._table: Dict[tuple, Node] = {}
        self.hits = 0
        self.misses = 0
        self.collections = 0
        #: Dead-node watermark that :meth:`should_collect` compares against;
        #: it doubles whenever a collection frees less than half the table,
        #: the same adaptive policy the JKU package uses.
        self.gc_limit = gc_initial_limit
        #: Number of table nodes with a non-zero reference count, maintained
        #: incrementally by ``inc_ref``/``dec_ref`` so the dead population
        #: (``len(table) - live``) is an O(1) read on the per-gate hot path.
        self.live = 0

    def __len__(self) -> int:
        return len(self._table)

    def lookup(self, var: int, edges: Tuple[Edge, ...]) -> Node:
        """Return the canonical node for ``(var, edges)``.

        ``edges`` must already be normalised; the table performs pure
        hash-consing and no arithmetic.
        """
        key = (var,) + tuple((id(e.node), id(e.weight)) for e in edges)
        node = self._table.get(key)
        if node is not None:
            self.hits += 1
            return node
        self.misses += 1
        node = Node(var, edges)
        self._table[key] = node
        return node

    # ------------------------------------------------------------------
    # Reference counting
    # ------------------------------------------------------------------

    def inc_ref(self, edge: Edge) -> Edge:
        """Increment reference counts for the sub-DAG rooted at ``edge``.

        Counts saturate per the usual DD-package convention: a node whose
        count ever hit the saturation level is pinned until the next
        collection that sees it unreferenced (we simply never saturate in
        Python, as ints are unbounded, so this is a straight increment).
        Returns ``edge`` for call chaining.
        """
        node = edge.node
        if node.var == TERMINAL_VAR:
            return edge
        node.ref += 1
        if node.ref == 1:
            self.live += 1
            # First external reference: pin the children transitively.
            for child in node.edges:
                self.inc_ref(child)
        return edge

    def dec_ref(self, edge: Edge) -> None:
        """Decrement reference counts for the sub-DAG rooted at ``edge``."""
        node = edge.node
        if node.var == TERMINAL_VAR:
            return
        if node.ref <= 0:
            raise RuntimeError("reference count underflow in unique table")
        node.ref -= 1
        if node.ref == 0:
            self.live -= 1
            for child in node.edges:
                self.dec_ref(child)

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------

    def garbage_collect(self) -> int:
        """Remove all nodes with a zero reference count.

        Returns the number of collected nodes.  The caller (the package) is
        responsible for clearing compute tables that may reference them.
        """
        before = len(self._table)
        self._table = {
            key: node for key, node in self._table.items() if node.ref > 0
        }
        collected = before - len(self._table)
        self.collections += 1
        if collected * 2 < before:
            # Collection was not very effective; back off so we do not
            # thrash (adaptive limit, mirroring the JKU package policy).
            self.gc_limit *= 2
        return collected

    @property
    def dead(self) -> int:
        """Nodes currently unreferenced (collectable garbage), an O(1) read."""
        return max(0, len(self._table) - self.live)

    def should_collect(self) -> bool:
        """True when the *dead* population exceeds the adaptive watermark.

        Sizing the trigger on garbage rather than on total occupancy keeps
        per-gate collection checks from firing on tables that are large but
        fully live (pinned gate DDs, prefix checkpoints, warm snapshots) —
        sweeping those would reclaim nothing and throw away the compute
        tables for free.
        """
        return self.dead > self.gc_limit

    def nodes(self) -> Iterable[Node]:
        """Iterate over all live nodes (diagnostics only)."""
        return self._table.values()

    def stats(self) -> Dict[str, int]:
        """Occupancy and hit statistics."""
        return {
            "entries": len(self._table),
            "dead": self.dead,
            "hits": self.hits,
            "misses": self.misses,
            "collections": self.collections,
            "gc_limit": self.gc_limit,
        }
