"""Weighted edges of a decision diagram.

An :class:`Edge` pairs a target :class:`~repro.dd.node.Node` with a canonical
complex weight (:class:`~repro.dd.complex_table.ComplexValue`).  The value
represented by a path through the diagram is the product of the edge weights
along it (paper, Example 4).  A whole decision diagram is identified by its
*root edge*; the root weight carries the global scalar factor, which for the
sum-of-squares vector normalisation used here equals the norm of the
represented state (see :mod:`repro.dd.package`).
"""

from __future__ import annotations

from .complex_table import ComplexValue
from .node import Node

__all__ = ["Edge"]


class Edge:
    """An edge ``(node, weight)``; immutable and cheaply hashable.

    Because nodes and weights are both hash-consed, two edges are equal iff
    node and weight are *identical* objects.
    """

    __slots__ = ("node", "weight", "_hash")

    def __init__(self, node: Node, weight: ComplexValue) -> None:
        self.node = node
        self.weight = weight
        self._hash = hash((id(node), weight))

    @property
    def is_terminal(self) -> bool:
        """True when the edge points at the terminal node."""
        return self.node.is_terminal

    @property
    def is_zero(self) -> bool:
        """True for the canonical zero edge (terminal with weight 0)."""
        return self.node.is_terminal and self.weight.is_zero()

    def weighted(self, table, factor: ComplexValue) -> "Edge":
        """Return this edge with its weight multiplied by ``factor``."""
        if factor.is_one():
            return self
        return Edge(self.node, table.multiply(self.weight, factor))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Edge):
            return self.node is other.node and self.weight is other.weight
        return NotImplemented

    def __repr__(self) -> str:
        return f"Edge({self.node!r}, {self.weight})"
