"""Decision-diagram node structures.

A decision diagram over an ``n``-qubit register is a rooted DAG.  Each inner
node is labelled with the qubit it decides (``var``); the *top* node decides
the most significant qubit ``q0`` (as in the paper, Section IV-B) and levels
increase downwards until the shared :data:`terminal <Node.is_terminal>` node
is reached below qubit ``n - 1``.

* Vector nodes carry **two** outgoing edges (amplitude sub-vectors for the
  qubit being |0> and |1>).
* Matrix nodes carry **four** outgoing edges (the four quadrants of the
  operator matrix, in row-major order: top-left, top-right, bottom-left,
  bottom-right).

Nodes are immutable after construction and *hash-consed* by the unique table
(:mod:`repro.dd.unique_table`): structurally identical nodes are guaranteed
to be the same Python object, so equality is identity.  The mutable ``ref``
field is bookkeeping for garbage collection and does not take part in node
identity.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .edge import Edge

__all__ = ["Node", "TERMINAL_VAR"]

#: Sentinel ``var`` value used by the terminal node.  The terminal sits below
#: every qubit level; using a plain sentinel keeps level comparisons cheap.
TERMINAL_VAR = -1


class Node:
    """A single decision-diagram node (vector, matrix, or terminal).

    Parameters
    ----------
    var:
        Qubit index this node decides; ``TERMINAL_VAR`` for the terminal.
    edges:
        Outgoing edges: empty for the terminal, two entries for a vector
        node, four for a matrix node.
    """

    __slots__ = ("var", "edges", "ref", "_hash")

    def __init__(self, var: int, edges: Tuple["Edge", ...]) -> None:
        if var == TERMINAL_VAR:
            if edges:
                raise ValueError("terminal node must not have edges")
        elif len(edges) not in (2, 4):
            raise ValueError(
                f"inner node needs 2 (vector) or 4 (matrix) edges, got {len(edges)}"
            )
        self.var = var
        self.edges = edges
        #: Reference count maintained by the unique table / package.
        self.ref = 0
        self._hash = hash((var,) + tuple((id(e.node), e.weight) for e in edges))

    @property
    def is_terminal(self) -> bool:
        """True for the shared terminal node."""
        return self.var == TERMINAL_VAR

    @property
    def is_vector_node(self) -> bool:
        """True for nodes with two successors (state-vector DDs)."""
        return len(self.edges) == 2

    @property
    def is_matrix_node(self) -> bool:
        """True for nodes with four successors (operator DDs)."""
        return len(self.edges) == 4

    def structural_key(self) -> tuple:
        """Key used by the unique table: label plus successor identities.

        Successor nodes and weights are themselves hash-consed, so identity
        (`id`) comparison is exact.
        """
        return (self.var,) + tuple((id(e.node), id(e.weight)) for e in self.edges)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if self.is_terminal:
            return "Node(terminal)"
        kind = "V" if self.is_vector_node else "M"
        return f"Node({kind}, q{self.var}, ref={self.ref})"
