"""Serialisation of decision diagrams to/from plain dictionaries.

Lets states and operators survive process boundaries and disk without
expanding to dense arrays: the DAG is flattened into a node list (children
referenced by index, weights as ``[real, imag]`` pairs), which is JSON- and
pickle-friendly and linear in the *diagram* size rather than ``2**n``.

Round-trip guarantee: deserialisation rebuilds through the target package's
``make_*_node`` constructors, so the result is canonical in that package
even if the source used a different tolerance.
"""

from __future__ import annotations

from typing import Dict, List

from .edge import Edge
from .node import Node
from .package import DDPackage

__all__ = ["serialize_edge", "deserialize_edge"]

_FORMAT_VERSION = 1


def serialize_edge(edge: Edge) -> dict:
    """Flatten a DD (vector or matrix) into a plain dictionary."""
    order: List[Node] = []
    index_of: Dict[int, int] = {}

    def collect(node: Node) -> None:
        if node.is_terminal or id(node) in index_of:
            return
        index_of[id(node)] = len(order)
        order.append(node)
        for child in node.edges:
            collect(child.node)

    collect(edge.node)

    def edge_record(child: Edge) -> list:
        target = -1 if child.node.is_terminal else index_of[id(child.node)]
        return [target, child.weight.real, child.weight.imag]

    return {
        "version": _FORMAT_VERSION,
        "kind": (
            "terminal"
            if edge.node.is_terminal
            else ("vector" if edge.node.is_vector_node else "matrix")
        ),
        "root": edge_record(edge),
        "nodes": [
            {"var": node.var, "edges": [edge_record(child) for child in node.edges]}
            for node in order
        ],
    }


def deserialize_edge(data: dict, package: DDPackage) -> Edge:
    """Rebuild a DD inside ``package`` from :func:`serialize_edge` output."""
    version = data.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported DD serialisation version {version!r}")
    kind = data["kind"]
    if kind not in ("terminal", "vector", "matrix"):
        raise ValueError(f"unknown DD kind {kind!r}")

    records = data["nodes"]
    rebuilt: List[Edge] = [None] * len(records)  # type: ignore[list-item]

    def resolve(record: list) -> Edge:
        target, real, imag = record
        weight = package.complex_table.lookup(complex(real, imag))
        if weight.is_zero():
            return package.zero_edge
        if target == -1:
            return Edge(package.terminal, weight)
        child = rebuilt[target]
        if child is None:
            raise ValueError("serialized nodes are not in topological order")
        return child.weighted(package.complex_table, weight)

    # Nodes were emitted in DFS preorder, so children always appear after
    # their parents; rebuild in reverse.
    for index in range(len(records) - 1, -1, -1):
        record = records[index]
        child_edges = [resolve(child) for child in record["edges"]]
        if len(child_edges) == 2:
            rebuilt[index] = package.make_vector_node(
                record["var"], child_edges[0], child_edges[1]
            )
        else:
            rebuilt[index] = package.make_matrix_node(record["var"], tuple(child_edges))

    return resolve(data["root"])
