"""Setuptools shim.

The offline environment lacks the ``wheel`` package that PEP 660 editable
installs require, so ``pip install -e .`` falls back to this classic
``setup.py`` (``python setup.py develop`` works without wheel).  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
